//! Adaptive Plumtree — tree optimization and lazy-link batching on vs.
//! off, across the paper's failure-and-healing scenario.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin plumtree_adaptive
//! cargo run --release -p hyparview-bench --bin plumtree_adaptive -- --smoke --assert
//! cargo run --release -p hyparview-bench --bin plumtree_adaptive -- --json out.json
//! ```
//!
//! Expected shape: every variant stays at 100% reliability on the stable
//! network; the optimizing variants end with a shallower last-delivery-hop
//! after the overlay heals from the failure (tree optimization swaps the
//! short lazy paths back into the tree); the batching variants pay fewer
//! control frames per broadcast (announcement queues flush as one
//! `IHaveBatch` per lazy link instead of one `IHave` per message).

use hyparview_bench::artifacts::plumtree_adaptive_artifact;
use hyparview_bench::experiments::adaptive::{plumtree_adaptive, AdaptiveCell, BURST};
use hyparview_bench::measure::{perf_artifact, perf_path, timed, Throughput};
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::Params;

const DEFAULT_FAILURE: f64 = 0.3;
const DEFAULT_WARMUP: usize = 30;
const DEFAULT_HEAL_CYCLES: usize = 5;

fn main() {
    let (params, rest) = Params::default().apply_args(std::env::args().skip(1));
    let mut failure = DEFAULT_FAILURE;
    let mut warmup = DEFAULT_WARMUP;
    let mut heal_cycles = DEFAULT_HEAL_CYCLES;
    let mut json_path: Option<String> = None;
    let mut assert_mode = false;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--failure" => {
                if let Some(v) = rest_iter.next() {
                    failure = v.parse().expect("--failure expects a fraction");
                }
            }
            "--warmup" => {
                if let Some(v) = rest_iter.next() {
                    warmup = v.parse().expect("--warmup expects an integer");
                }
            }
            "--heal-cycles" => {
                if let Some(v) = rest_iter.next() {
                    heal_cycles = v.parse().expect("--heal-cycles expects an integer");
                }
            }
            "--json" => json_path = rest_iter.next().cloned(),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Adaptive Plumtree — optimization + batching across failure and healing");
    println!(
        "# {} (failure {:.0}%, warmup {warmup}, heal cycles {heal_cycles}, bursts of {BURST})",
        params.describe(),
        failure * 100.0
    );

    let sweep = timed(|| plumtree_adaptive(&params, failure, warmup, heal_cycles));
    let cells = sweep.value;
    let throughput = Throughput::new(sweep.wall_ms, cells.iter().map(|c| c.events).sum());

    let headers = vec![
        "variant",
        "phase",
        "reliability",
        "RMR",
        "last hop",
        "control/bcast",
        "optimizations",
        "batches",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cell in &cells {
        for (phase, metrics) in [("stable", &cell.stable), ("healed", &cell.healed)] {
            rows.push(vec![
                cell.variant.label.to_owned(),
                phase.to_owned(),
                pct(metrics.mean_reliability),
                num(metrics.mean_rmr, 3),
                num(metrics.mean_last_hop, 1),
                num(metrics.control_per_broadcast, 1),
                cell.optimizations.to_string(),
                cell.batches.to_string(),
            ]);
        }
    }
    println!("{}", render(&headers, &rows));

    let by_label = |label: &str| -> &AdaptiveCell {
        cells.iter().find(|c| c.variant.label == label).expect("variant present")
    };
    let (static_, optimized, batched) =
        (by_label("static"), by_label("optimized"), by_label("batched"));
    println!(
        "healed last hop: optimized {} vs static {}; stable control/bcast: batched {} vs static {}",
        num(optimized.healed.mean_last_hop, 1),
        num(static_.healed.mean_last_hop, 1),
        num(batched.stable.control_per_broadcast, 1),
        num(static_.stable.control_per_broadcast, 1),
    );

    println!("throughput: {} (jobs = {})", throughput.describe(), params.jobs);

    if let Some(path) = json_path {
        let json = plumtree_adaptive_artifact(&params, failure, warmup, heal_cycles, &cells);
        std::fs::write(&path, json).expect("write JSON results");
        let sidecar = perf_path(&path);
        std::fs::write(&sidecar, perf_artifact("plumtree_adaptive", params.jobs, &throughput))
            .expect("write perf sidecar");
        println!("(JSON results written to {path}, perf sidecar to {sidecar})");
    }

    if assert_mode {
        let mut failures = Vec::new();
        for cell in &cells {
            if cell.stable.mean_reliability < 0.9999 {
                failures.push(format!(
                    "{}: stable reliability {} < 100%",
                    cell.variant.label,
                    pct(cell.stable.mean_reliability)
                ));
            }
        }
        if optimized.healed.mean_last_hop >= static_.healed.mean_last_hop {
            failures.push(format!(
                "optimization did not flatten the healed tree ({} vs static {})",
                num(optimized.healed.mean_last_hop, 1),
                num(static_.healed.mean_last_hop, 1)
            ));
        }
        if batched.stable.control_per_broadcast >= static_.stable.control_per_broadcast {
            failures.push(format!(
                "batching did not cut control traffic ({} vs static {})",
                num(batched.stable.control_per_broadcast, 1),
                num(static_.stable.control_per_broadcast, 1)
            ));
        }
        if !failures.is_empty() {
            eprintln!("ASSERTION FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!(
            "(asserts passed: 100% stable reliability, shallower healed trees, cheaper lazy links)"
        );
    }
}
