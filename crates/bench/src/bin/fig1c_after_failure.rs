//! Figure 1c — reliability of the messages sent right after 50% of the
//! nodes crash, for Cyclon and Scamp (the motivation experiment, §3.2).
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin fig1c_after_failure -- --quick
//! ```

use hyparview_bench::experiments::recovery_series;
use hyparview_bench::table::{pct, render, sparkline};
use hyparview_bench::Params;
use hyparview_sim::protocols::ProtocolKind;

fn main() {
    let (mut params, _) = Params::default().apply_args(std::env::args().skip(1));
    // The paper sends 100 messages in this experiment.
    if params.messages > 100 {
        params.messages = 100;
    }
    println!("# Figure 1c — effect of 50% node failures (Cyclon, Scamp)");
    println!("# {}", params.describe());

    let mut rows = Vec::new();
    for kind in [ProtocolKind::Cyclon, ProtocolKind::Scamp] {
        let series = recovery_series(&params, kind, 0.5);
        let max = series.reliability.iter().copied().fold(0.0, f64::max);
        let mean = series.reliability.iter().sum::<f64>() / series.reliability.len() as f64;
        rows.push(vec![
            kind.label().to_owned(),
            pct(mean),
            pct(max),
            sparkline(&series.reliability, 25),
        ]);
    }
    println!("{}", render(&["protocol", "mean reliability", "best message", "evolution"], &rows));
    println!("(paper: no message delivered to more than ~85% of nodes; no recovery before the next cycle)");
}
