//! Figure 2 — mean reliability of 1000 broadcasts sent right after crashing
//! 10%–95% of all nodes, for all four protocols.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin fig2_reliability -- --quick
//! cargo run --release -p hyparview-bench --bin fig2_reliability -- --quick --jobs 4
//! cargo run --release -p hyparview-bench --bin fig2_reliability -- --smoke --assert --json fig2.json
//! ```
//!
//! `--json PATH` writes the table as a JSON artifact (plus a
//! `PATH.perf.json` sidecar with `wall_ms`/`events_per_sec`); `--jobs N`
//! fans the seed sweep over N threads without changing a byte of the
//! results; `--assert` exits nonzero unless HyParView reproduces the
//! paper's headline: 100% mean reliability through 50% failures and
//! ≥ 90% through 90% failures.

use hyparview_bench::artifacts::fig2_artifact;
use hyparview_bench::experiments::reliability_after_failures;
use hyparview_bench::measure::{perf_artifact, perf_path, timed, Throughput};
use hyparview_bench::table::{pct, render};
use hyparview_bench::{Params, ALL_PROTOCOLS, FIG2_FAILURES};
use hyparview_sim::protocols::ProtocolKind;

fn main() {
    let (params, rest) = Params::default().apply_args(std::env::args().skip(1));
    let mut json_path: Option<String> = None;
    let mut assert_mode = false;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--json" => json_path = rest_iter.next().cloned(),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Figure 2 — reliability for {} messages after massive failures", params.messages);
    println!("# {}", params.describe());

    let sweep = timed(|| reliability_after_failures(&params, &ALL_PROTOCOLS, &FIG2_FAILURES));
    let rows_data = sweep.value;
    let events: u64 = rows_data.iter().flat_map(|r| r.cells.iter().map(|c| c.events)).sum();
    let throughput = Throughput::new(sweep.wall_ms, events);

    let mut headers = vec!["failure %"];
    for kind in ALL_PROTOCOLS {
        headers.push(kind.label());
    }
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            let mut cells = vec![format!("{:.0}%", row.failure * 100.0)];
            cells.extend(row.cells.iter().map(|c| pct(c.mean_reliability)));
            cells
        })
        .collect();
    println!("{}", render(&headers, &rows));
    println!("(paper: HyParView ~100% up to 90%, ~90% at 95%; CyclonAcked competitive to 70%;");
    println!(" Cyclon and Scamp below 50% reliability for failure rates above 50%)");
    println!("throughput: {} (jobs = {})", throughput.describe(), params.jobs);

    if let Some(path) = json_path {
        std::fs::write(&path, fig2_artifact(&params, &rows_data)).expect("write JSON results");
        let sidecar = perf_path(&path);
        std::fs::write(&sidecar, perf_artifact("fig2_reliability", params.jobs, &throughput))
            .expect("write perf sidecar");
        println!("(JSON results written to {path}, perf sidecar to {sidecar})");
    }

    if assert_mode {
        let mut failures = Vec::new();
        for row in &rows_data {
            let Some(hpv) = row.cells.iter().find(|c| c.kind == ProtocolKind::HyParView) else {
                continue;
            };
            if row.failure <= 0.5 && hpv.mean_reliability < 0.9999 {
                failures.push(format!(
                    "HyParView at {:.0}% failures: reliability {} < 100%",
                    row.failure * 100.0,
                    pct(hpv.mean_reliability)
                ));
            }
            if row.failure <= 0.9 && hpv.mean_reliability < 0.90 {
                failures.push(format!(
                    "HyParView at {:.0}% failures: reliability {} < 90%",
                    row.failure * 100.0,
                    pct(hpv.mean_reliability)
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("ASSERTION FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!("(asserts passed: HyParView at 100% through 50% failures, >= 90% through 90%)");
    }
}
