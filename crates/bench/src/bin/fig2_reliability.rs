//! Figure 2 — mean reliability of 1000 broadcasts sent right after crashing
//! 10%–95% of all nodes, for all four protocols.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin fig2_reliability -- --quick
//! ```

use hyparview_bench::experiments::reliability_after_failures;
use hyparview_bench::table::{pct, render};
use hyparview_bench::{Params, ALL_PROTOCOLS, FIG2_FAILURES};

fn main() {
    let (params, _) = Params::default().apply_args(std::env::args().skip(1));
    println!("# Figure 2 — reliability for {} messages after massive failures", params.messages);
    println!("# {}", params.describe());

    let rows_data = reliability_after_failures(&params, &ALL_PROTOCOLS, &FIG2_FAILURES);

    let mut headers = vec!["failure %"];
    for kind in ALL_PROTOCOLS {
        headers.push(kind.label());
    }
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            let mut cells = vec![format!("{:.0}%", row.failure * 100.0)];
            cells.extend(row.cells.iter().map(|c| pct(c.mean_reliability)));
            cells
        })
        .collect();
    println!("{}", render(&headers, &rows));
    println!("(paper: HyParView ~100% up to 90%, ~90% at 95%; CyclonAcked competitive to 70%;");
    println!(" Cyclon and Scamp below 50% reliability for failure rates above 50%)");
}
