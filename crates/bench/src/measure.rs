//! Wall-clock and throughput measurement for the experiment bins.
//!
//! Simulator throughput is a first-class, CI-tracked metric: every
//! experiment binary times its sweep ([`timed`]), pairs the wall time with
//! the deterministic event count the simulators report
//! (`SimStats::events_processed`), and writes the resulting
//! [`Throughput`] into a *perf sidecar* artifact next to the results
//! artifact ([`perf_path`]).
//!
//! The split matters: the results artifact is a pure function of the seed
//! — byte-identical across `--jobs` settings and machines — while
//! `wall_ms`/`events_per_sec` are as noisy as the hardware they ran on.
//! Keeping the noisy numbers in their own file preserves the
//! parallel-equals-sequential property of the results while still letting
//! `bench_diff` track simulator speed across runs (warn-only, never
//! gating).

use crate::json::JsonObject;
use crate::obsv_json::registry_json;
use hyparview_obsv::Registry;
use std::time::Instant;

/// A value plus the wall-clock milliseconds it took to produce.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Wall-clock duration of the computation, in milliseconds.
    pub wall_ms: f64,
}

/// Runs `f` and measures its wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed { value, wall_ms: start.elapsed().as_secs_f64() * 1_000.0 }
}

/// Simulator throughput of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Wall-clock duration of the whole sweep, in milliseconds.
    pub wall_ms: f64,
    /// Simulator events processed across every `Sim` of the sweep
    /// (deterministic per seed).
    pub events: u64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
}

impl Throughput {
    /// Pairs a wall time with the deterministic event count.
    pub fn new(wall_ms: f64, events: u64) -> Throughput {
        let events_per_sec = if wall_ms > 0.0 { events as f64 / (wall_ms / 1_000.0) } else { 0.0 };
        Throughput { wall_ms, events, events_per_sec }
    }

    /// One-line human rendering for the experiment logs.
    pub fn describe(&self) -> String {
        format!(
            "{:.0} ms wall, {} events, {:.0} events/sec",
            self.wall_ms, self.events, self.events_per_sec
        )
    }
}

/// Renders the perf sidecar artifact for `experiment`, run with `jobs`
/// worker threads.
pub fn perf_artifact(experiment: &str, jobs: usize, throughput: &Throughput) -> String {
    JsonObject::new()
        .str("experiment", experiment)
        .int("jobs", jobs as u64)
        .num("wall_ms", throughput.wall_ms)
        .int("events", throughput.events)
        .num("events_per_sec", throughput.events_per_sec)
        .build()
}

/// Renders a perf sidecar that additionally carries a reactor
/// introspection snapshot (`reactor.*` gauges: epoll wait time, readiness
/// batch size, outq high-water, timer lag) as a nested `reactor` object.
/// Like `wall_ms`, the gauges are wall-clock-derived and noisy — they
/// live in the sidecar, never in the results artifact, and `bench_diff`
/// treats `reactor.` paths as warn-only.
pub fn perf_artifact_with_reactor(
    experiment: &str,
    jobs: usize,
    throughput: &Throughput,
    reactor: &Registry,
) -> String {
    JsonObject::new()
        .str("experiment", experiment)
        .int("jobs", jobs as u64)
        .num("wall_ms", throughput.wall_ms)
        .int("events", throughput.events)
        .num("events_per_sec", throughput.events_per_sec)
        .raw("reactor", registry_json(reactor))
        .build()
}

/// The perf sidecar path for a results artifact: `x.json` →
/// `x.perf.json` (non-`.json` paths just get `.perf.json` appended), so
/// directory-diffing tools pair sidecars by name like any other artifact.
pub fn perf_path(json_path: &str) -> String {
    match json_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.perf.json"),
        None => format!("{json_path}.perf.json"),
    }
}

/// The metric-snapshot path for a results artifact: `x.json` →
/// `x.metrics.json`. Snapshot files hold a full [`Registry`] rendered by
/// [`registry_json`]; they land next to the results so the CI artifact
/// upload picks them up unchanged.
pub fn metrics_path(json_path: &str) -> String {
    match json_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.metrics.json"),
        None => format!("{json_path}.metrics.json"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    #[test]
    fn timed_measures_something() {
        let timed = timed(|| (0..10_000u64).sum::<u64>());
        assert_eq!(timed.value, 49_995_000);
        assert!(timed.wall_ms >= 0.0);
    }

    #[test]
    fn throughput_math() {
        let t = Throughput::new(2_000.0, 1_000_000);
        assert!((t.events_per_sec - 500_000.0).abs() < 1e-6);
        assert!(t.describe().contains("events/sec"));
        // Zero wall time must not divide by zero.
        assert_eq!(Throughput::new(0.0, 10).events_per_sec, 0.0);
    }

    #[test]
    fn perf_artifact_parses_and_carries_the_metrics() {
        let doc = perf_artifact("fig2_reliability", 4, &Throughput::new(1_500.0, 3_000));
        let parsed = parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("experiment").and_then(JsonValue::as_str), Some("fig2_reliability"));
        assert_eq!(parsed.get("jobs").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(parsed.get("wall_ms").and_then(JsonValue::as_f64), Some(1500.0));
        assert_eq!(parsed.get("events_per_sec").and_then(JsonValue::as_f64), Some(2000.0));
    }

    #[test]
    fn perf_path_replaces_the_extension() {
        assert_eq!(perf_path("bench-results/fig2.json"), "bench-results/fig2.perf.json");
        assert_eq!(perf_path("weird-name"), "weird-name.perf.json");
        assert_eq!(metrics_path("results/x.json"), "results/x.metrics.json");
        assert_eq!(metrics_path("plain"), "plain.metrics.json");
    }

    #[test]
    fn reactor_perf_artifact_nests_the_gauge_snapshot() {
        let mut reactor = Registry::new();
        let waits = reactor.counter("reactor.epoll_waits");
        reactor.add(waits, 12);
        let outq = reactor.gauge("reactor.outq_high_water");
        reactor.set_gauge(outq, 5);
        let doc =
            perf_artifact_with_reactor("cluster_scale", 1, &Throughput::new(100.0, 200), &reactor);
        let parsed = parse(&doc).expect("valid JSON");
        let nested = parsed.get("reactor").expect("reactor object");
        assert_eq!(nested.get("reactor.epoll_waits").and_then(JsonValue::as_f64), Some(12.0));
        assert_eq!(nested.get("reactor.outq_high_water").and_then(JsonValue::as_f64), Some(5.0));
    }
}
