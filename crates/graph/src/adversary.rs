//! Adversarial overlay analyzers: how much of the overlay a colluding set
//! has captured, and what remains of the honest overlay without them.
//!
//! The paper's §5.4 argues the overlay stays balanced under *random*
//! failures; these metrics quantify the *coordinated* case. All functions
//! take colluders as node indices into the [`Overlay`] snapshot — the
//! analyzers are attack-model agnostic.

use crate::metrics::{
    connectivity, degree_histogram, degree_summary, in_degrees, ConnectivityReport, DegreeSummary,
};
use crate::overlay::Overlay;
use std::collections::BTreeMap;

/// In-degree distribution of one overlay snapshot: the Figure 5 analysis
/// (histogram + summary) as a reusable value.
#[derive(Debug, Clone, PartialEq)]
pub struct IndegreeReport {
    /// `in-degree → node count` over alive nodes.
    pub histogram: BTreeMap<usize, usize>,
    /// Mean/min/max/stddev of the alive in-degree sequence.
    pub summary: DegreeSummary,
}

impl IndegreeReport {
    /// Fraction of alive nodes with exactly `degree` in-edges.
    pub fn fraction_at(&self, degree: usize) -> f64 {
        let total: usize = self.histogram.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.histogram.get(&degree).unwrap_or(&0) as f64 / total as f64
    }
}

/// Computes the in-degree distribution of the overlay (histogram over alive
/// nodes + summary statistics) — the analysis the Figure 5 experiments
/// perform, extracted so attack experiments reuse it unchanged.
pub fn indegree_report(overlay: &Overlay) -> IndegreeReport {
    let degrees = in_degrees(overlay);
    let alive_degrees: Vec<usize> = overlay.alive_nodes().into_iter().map(|v| degrees[v]).collect();
    IndegreeReport {
        histogram: degree_histogram(&degrees, overlay),
        summary: degree_summary(&alive_degrees),
    }
}

fn colluder_mask(overlay: &Overlay, colluders: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; overlay.len()];
    for &c in colluders {
        if c < mask.len() {
            mask[c] = true;
        }
    }
    mask
}

/// Mean colluder share of honest nodes' out-views: for every alive honest
/// node with at least one alive out-neighbor, the fraction of those
/// neighbors that collude, averaged over the honest population. `0.0` is an
/// untouched overlay, `1.0` a fully captured one.
pub fn capture_fraction(overlay: &Overlay, colluders: &[usize]) -> f64 {
    let mask = colluder_mask(overlay, colluders);
    let mut total = 0.0;
    let mut counted = 0usize;
    for v in overlay.alive_nodes() {
        if mask[v] {
            continue;
        }
        let mut alive_targets = 0usize;
        let mut captured = 0usize;
        for &t in overlay.out_neighbors(v) {
            let t = t as usize;
            if !overlay.is_alive(t) {
                continue;
            }
            alive_targets += 1;
            if mask[t] {
                captured += 1;
            }
        }
        if alive_targets > 0 {
            total += captured as f64 / alive_targets as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Colluders' share of the overlay's total in-degree mass (in-edges from
/// alive nodes): how much of the overlay's "reachability" (Figure 5's
/// metric) the colluding set has attracted to itself.
pub fn indegree_capture(overlay: &Overlay, colluders: &[usize]) -> f64 {
    let mask = colluder_mask(overlay, colluders);
    let degrees = in_degrees(overlay);
    let total: usize = overlay.alive_nodes().into_iter().map(|v| degrees[v]).sum();
    if total == 0 {
        return 0.0;
    }
    let captured: usize =
        overlay.alive_nodes().into_iter().filter(|&v| mask[v]).map(|v| degrees[v]).sum();
    captured as f64 / total as f64
}

/// The victims whose entire out-view consists of colluders — fully
/// *eclipsed*: every broadcast they originate or relay dies at a colluder.
/// Victims with empty views are not counted (isolation is a different
/// failure, reported by [`ConnectivityReport::isolated`]).
pub fn eclipsed_victims(overlay: &Overlay, victims: &[usize], colluders: &[usize]) -> Vec<usize> {
    let mask = colluder_mask(overlay, colluders);
    victims
        .iter()
        .copied()
        .filter(|&v| {
            v < overlay.len()
                && overlay.is_alive(v)
                && !overlay.out_neighbors(v).is_empty()
                && overlay.out_neighbors(v).iter().all(|&t| mask[t as usize])
        })
        .collect()
}

/// The overlay restricted to honest nodes: colluders become dead nodes and
/// every edge into them disappears — what the overlay would look like the
/// instant the conspiracy walks away (or starts black-holing traffic).
pub fn honest_subgraph(overlay: &Overlay, colluders: &[usize]) -> Overlay {
    let mask = colluder_mask(overlay, colluders);
    let views = (0..overlay.len())
        .map(|v| {
            if !overlay.is_alive(v) || mask[v] {
                None
            } else {
                Some(
                    overlay
                        .out_neighbors(v)
                        .iter()
                        .map(|&t| t as usize)
                        .filter(|&t| !mask[t])
                        .collect(),
                )
            }
        })
        .collect();
    Overlay::new(views)
}

/// Connectivity of the [`honest_subgraph`]: whether the honest population
/// still forms one component once every colluder (and every link through
/// one) is discounted.
pub fn honest_connectivity(overlay: &Overlay, colluders: &[usize]) -> ConnectivityReport {
    connectivity(&honest_subgraph(overlay, colluders))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5 honest nodes in a ring, nodes 5–6 collude. Node 1's view is fully
    /// captured; node 2 half-captured.
    fn infiltrated() -> Overlay {
        Overlay::new(vec![
            Some(vec![1, 2]),    // 0: honest view
            Some(vec![5, 6]),    // 1: fully eclipsed
            Some(vec![3, 5]),    // 2: half captured
            Some(vec![4]),       // 3
            Some(vec![0]),       // 4
            Some(vec![1, 2, 6]), // 5: colluder
            Some(vec![1, 5]),    // 6: colluder
        ])
    }

    #[test]
    fn indegree_report_matches_manual_counts() {
        let report = indegree_report(&infiltrated());
        let total: usize = report.histogram.values().sum();
        assert_eq!(total, 7, "every alive node appears once");
        // Node 1 is held by 0, 5 and 6 → in-degree 3.
        assert!(report.summary.max >= 3);
        let spread: f64 = (0..=report.summary.max).map(|d| report.fraction_at(d)).sum();
        assert!((spread - 1.0).abs() < 1e-9, "fractions sum to 1, got {spread}");
    }

    #[test]
    fn capture_fraction_averages_honest_views() {
        let o = infiltrated();
        let colluders = [5, 6];
        // Shares: node 0 → 0/2, node 1 → 2/2, node 2 → 1/2, node 3 → 0,
        // node 4 → 0. Mean = (0 + 1 + 0.5 + 0 + 0) / 5 = 0.3.
        let f = capture_fraction(&o, &colluders);
        assert!((f - 0.3).abs() < 1e-9, "got {f}");
        assert_eq!(capture_fraction(&o, &[]), 0.0);
    }

    #[test]
    fn indegree_capture_is_colluder_share_of_total() {
        let o = infiltrated();
        let degrees = in_degrees(&o);
        let total: usize = degrees.iter().sum();
        let expected = (degrees[5] + degrees[6]) as f64 / total as f64;
        assert!((indegree_capture(&o, &[5, 6]) - expected).abs() < 1e-9);
    }

    #[test]
    fn eclipsed_victims_require_full_capture() {
        let o = infiltrated();
        assert_eq!(eclipsed_victims(&o, &[0, 1, 2, 3], &[5, 6]), vec![1]);
        // An empty view is isolation, not eclipse.
        let empty = Overlay::new(vec![Some(vec![]), Some(vec![0])]);
        assert!(eclipsed_victims(&empty, &[0], &[1]).is_empty());
    }

    #[test]
    fn honest_connectivity_discounts_colluders() {
        let o = infiltrated();
        let report = honest_connectivity(&o, &[5, 6]);
        // Honest subgraph: 0→{1,2}, 1→{}, 2→{3}, 3→{4}, 4→{0} — one
        // component of 5.
        assert_eq!(report.largest_component, 5);
        assert!(report.is_connected());
        // Cutting node 0's links instead splits the honest overlay.
        let sub = honest_subgraph(&o, &[5, 6]);
        assert_eq!(sub.alive_count(), 5);
        assert_eq!(sub.out_neighbors(1), &[] as &[u32], "links into colluders removed");
    }
}
