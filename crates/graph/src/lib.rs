//! # hyparview-graph
//!
//! Overlay graph snapshots and the metrics the HyParView paper uses to
//! characterise partial-view quality (§2.3, §5.4):
//!
//! * **in/out-degree distributions** — Figure 5;
//! * **clustering coefficient** — Table 1, the property behind HyParView's
//!   resilience;
//! * **average shortest path** — Table 1;
//! * **connectivity** — components, largest component, isolated nodes;
//! * **adversarial capture** — colluder share of honest views, in-degree
//!   capture, eclipsed victims, honest-component connectivity
//!   ([`adversary`]).
//!
//! The crate is protocol-agnostic: it consumes plain adjacency snapshots
//! (`Vec<Option<Vec<usize>>>`, `None` = crashed node) produced by
//! `hyparview-sim`'s `out_views()`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod metrics;
pub mod overlay;

pub use adversary::{
    capture_fraction, eclipsed_victims, honest_connectivity, honest_subgraph, indegree_capture,
    indegree_report, IndegreeReport,
};
pub use metrics::{
    bfs_distances, clustering_coefficient, connectivity, degree_assortativity, degree_histogram,
    degree_summary, distance_histogram, in_degrees, out_degrees, shortest_path_stats,
    ConnectivityReport, DegreeSummary, PathStats,
};
pub use overlay::Overlay;
