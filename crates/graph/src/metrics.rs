//! The overlay graph metrics of the paper's §2.3 and §5.4: degree
//! distributions, clustering coefficient, average shortest path and
//! connectivity.

use crate::overlay::Overlay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// In-degree of every node: how many alive nodes hold each node in their
/// partial view — the paper's "measure of the reachability of a node"
/// (Figure 5 plots its distribution).
pub fn in_degrees(overlay: &Overlay) -> Vec<usize> {
    let mut degrees = vec![0usize; overlay.len()];
    for v in overlay.alive_nodes() {
        for &t in overlay.out_neighbors(v) {
            if overlay.is_alive(t as usize) {
                degrees[t as usize] += 1;
            }
        }
    }
    degrees
}

/// Out-degree of every alive node.
pub fn out_degrees(overlay: &Overlay) -> Vec<usize> {
    overlay
        .alive_nodes()
        .into_iter()
        .map(|v| overlay.out_neighbors(v).iter().filter(|t| overlay.is_alive(**t as usize)).count())
        .collect()
}

/// Histogram of a degree sequence: `degree → node count` (Figure 5).
pub fn degree_histogram(degrees: &[usize], overlay: &Overlay) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for v in overlay.alive_nodes() {
        *hist.entry(degrees[v]).or_insert(0) += 1;
    }
    hist
}

/// Average clustering coefficient (§2.3): for each node, the number of
/// edges among its neighbors divided by the maximum possible, averaged over
/// all alive nodes. Neighbor relations use the undirected projection of the
/// overlay, matching the paper's treatment of partial views as neighbor
/// sets.
pub fn clustering_coefficient(overlay: &Overlay) -> f64 {
    let und = overlay.undirected_adjacency();
    let mut total = 0.0;
    let mut counted = 0usize;
    for v in overlay.alive_nodes() {
        let neighbors = &und[v];
        let k = neighbors.len();
        counted += 1;
        if k < 2 {
            continue; // coefficient 0 by convention
        }
        let mut links = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                let a = neighbors[i] as usize;
                let b = neighbors[j];
                if und[a].contains(&b) {
                    links += 1;
                }
            }
        }
        total += links as f64 / ((k * (k - 1)) as f64 / 2.0);
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Breadth-first distances from `source` over *directed* out-edges,
/// restricted to alive nodes. `u32::MAX` marks unreachable nodes.
pub fn bfs_distances(overlay: &Overlay, source: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; overlay.len()];
    if !overlay.is_alive(source) {
        return dist;
    }
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v];
        for &t in overlay.out_neighbors(v) {
            let t = t as usize;
            if overlay.is_alive(t) && dist[t] == u32::MAX {
                dist[t] = d + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// Result of the (sampled) shortest-path analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStats {
    /// Mean shortest-path length over reachable ordered pairs.
    pub average: f64,
    /// Longest shortest path observed (diameter estimate).
    pub max: u32,
    /// Fraction of sampled ordered pairs that were reachable.
    pub reachable_fraction: f64,
}

/// Average shortest path (§2.3) estimated by BFS from `samples` random
/// alive sources (exact when `samples >= alive nodes`).
pub fn shortest_path_stats(overlay: &Overlay, samples: usize, seed: u64) -> PathStats {
    let alive = overlay.alive_nodes();
    if alive.len() < 2 {
        return PathStats { average: 0.0, max: 0, reachable_fraction: 0.0 };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sources: Vec<usize> = if samples >= alive.len() {
        alive.clone()
    } else {
        (0..samples).map(|_| alive[rng.gen_range(0..alive.len())]).collect()
    };
    let mut total = 0u64;
    let mut reachable = 0u64;
    let mut pairs = 0u64;
    let mut max = 0u32;
    for source in sources {
        let dist = bfs_distances(overlay, source);
        for &v in &alive {
            if v == source {
                continue;
            }
            pairs += 1;
            if dist[v] != u32::MAX {
                reachable += 1;
                total += u64::from(dist[v]);
                max = max.max(dist[v]);
            }
        }
    }
    PathStats {
        average: if reachable == 0 { 0.0 } else { total as f64 / reachable as f64 },
        max,
        reachable_fraction: if pairs == 0 { 0.0 } else { reachable as f64 / pairs as f64 },
    }
}

/// Connectivity report over the undirected projection (§2.3 "Connectivity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectivityReport {
    /// Number of connected components among alive nodes.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Alive nodes with no overlay links at all.
    pub isolated: usize,
}

impl ConnectivityReport {
    /// `true` when all alive nodes are in one component.
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }
}

/// Computes connectivity of the undirected projection.
pub fn connectivity(overlay: &Overlay) -> ConnectivityReport {
    let und = overlay.undirected_adjacency();
    let mut component = vec![usize::MAX; overlay.len()];
    let mut components = 0usize;
    let mut largest = 0usize;
    let mut isolated = 0usize;
    for start in overlay.alive_nodes() {
        if component[start] != usize::MAX {
            continue;
        }
        let label = components;
        components += 1;
        let mut size = 0usize;
        let mut queue = VecDeque::from([start]);
        component[start] = label;
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &t in &und[v] {
                let t = t as usize;
                if component[t] == usize::MAX {
                    component[t] = label;
                    queue.push_back(t);
                }
            }
        }
        largest = largest.max(size);
        if size == 1 && und[start].is_empty() {
            isolated += 1;
        }
    }
    ConnectivityReport { components, largest_component: largest, isolated }
}

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    /// Mean degree.
    pub mean: f64,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Standard deviation.
    pub stddev: f64,
}

/// Summarises a degree sequence (means/extremes/spread — §5.4 discussion).
pub fn degree_summary(degrees: &[usize]) -> DegreeSummary {
    if degrees.is_empty() {
        return DegreeSummary { mean: 0.0, min: 0, max: 0, stddev: 0.0 };
    }
    let n = degrees.len() as f64;
    let mean = degrees.iter().sum::<usize>() as f64 / n;
    let var = degrees.iter().map(|d| (*d as f64 - mean).powi(2)).sum::<f64>() / n;
    DegreeSummary {
        mean,
        min: *degrees.iter().min().unwrap(),
        max: *degrees.iter().max().unwrap(),
        stddev: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 ↔ 1 ↔ 2, plus 2 → 0 (triangle with one asymmetric edge).
    fn triangle() -> Overlay {
        Overlay::new(vec![Some(vec![1]), Some(vec![0, 2]), Some(vec![1, 0])])
    }

    /// Two components: {0, 1} and {2, 3}; node 4 isolated.
    fn split() -> Overlay {
        Overlay::new(vec![Some(vec![1]), Some(vec![0]), Some(vec![3]), Some(vec![2]), Some(vec![])])
    }

    #[test]
    fn in_degrees_count_incoming_alive_edges() {
        let o = triangle();
        assert_eq!(in_degrees(&o), vec![2, 2, 1]);
    }

    #[test]
    fn in_degrees_skip_dead_sources_and_targets() {
        let o = Overlay::new(vec![Some(vec![1, 2]), None, Some(vec![1])]);
        // Node 1 is dead: edges to it don't count, and it contributes none.
        assert_eq!(in_degrees(&o), vec![0, 0, 1]);
    }

    #[test]
    fn out_degrees_alive_only() {
        let o = Overlay::new(vec![Some(vec![1, 2]), None, Some(vec![0])]);
        // Node 0's edge to dead node 1 doesn't count.
        assert_eq!(out_degrees(&o), vec![1, 1]);
    }

    #[test]
    fn histogram_buckets() {
        let o = triangle();
        let hist = degree_histogram(&in_degrees(&o), &o);
        assert_eq!(hist.get(&2), Some(&2));
        assert_eq!(hist.get(&1), Some(&1));
    }

    #[test]
    fn clustering_of_full_triangle_is_one() {
        // Fully connected triangle.
        let o = Overlay::new(vec![Some(vec![1, 2]), Some(vec![0, 2]), Some(vec![0, 1])]);
        assert!((clustering_coefficient(&o) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        // Star: center 0 connected to 1, 2, 3; leaves unconnected.
        let o =
            Overlay::new(vec![Some(vec![1, 2, 3]), Some(vec![0]), Some(vec![0]), Some(vec![0])]);
        assert_eq!(clustering_coefficient(&o), 0.0);
    }

    #[test]
    fn clustering_partial() {
        // 0 ~ {1, 2}; 1 ~ 2 closes the triangle only for node 0's pair.
        let o = Overlay::new(vec![Some(vec![1, 2]), Some(vec![2]), Some(vec![])]);
        // Undirected: 0~1, 0~2, 1~2 — actually a full triangle.
        assert!((clustering_coefficient(&o) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bfs_distances_on_chain() {
        let o = Overlay::new(vec![Some(vec![1]), Some(vec![2]), Some(vec![])]);
        assert_eq!(bfs_distances(&o, 0), vec![0, 1, 2]);
        assert_eq!(bfs_distances(&o, 2), vec![u32::MAX, u32::MAX, 0]);
    }

    #[test]
    fn bfs_from_dead_source_reaches_nothing() {
        let o = Overlay::new(vec![None, Some(vec![0])]);
        assert!(bfs_distances(&o, 0).iter().all(|d| *d == u32::MAX));
    }

    #[test]
    fn shortest_path_stats_on_cycle() {
        // Directed 4-cycle: distances 1, 2, 3 from each node; mean = 2.
        let o = Overlay::new(vec![Some(vec![1]), Some(vec![2]), Some(vec![3]), Some(vec![0])]);
        let stats = shortest_path_stats(&o, 100, 7);
        assert!((stats.average - 2.0).abs() < 1e-9);
        assert_eq!(stats.max, 3);
        assert!((stats.reachable_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_disconnected() {
        let o = split();
        let stats = shortest_path_stats(&o, 100, 7);
        assert!(stats.reachable_fraction < 0.5);
    }

    #[test]
    fn connectivity_components() {
        let report = connectivity(&split());
        assert_eq!(report.components, 3);
        assert_eq!(report.largest_component, 2);
        assert_eq!(report.isolated, 1);
        assert!(!report.is_connected());
    }

    #[test]
    fn connectivity_of_triangle() {
        let report = connectivity(&triangle());
        assert!(report.is_connected());
        assert_eq!(report.largest_component, 3);
        assert_eq!(report.isolated, 0);
    }

    #[test]
    fn connectivity_ignores_dead_nodes() {
        let o = Overlay::new(vec![Some(vec![1]), None, Some(vec![1])]);
        let report = connectivity(&o);
        // Nodes 0 and 2 both only link to the dead node 1 → both isolated.
        assert_eq!(report.components, 2);
        assert_eq!(report.isolated, 2);
    }

    #[test]
    fn degree_summary_stats() {
        let s = degree_summary(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degree_summary_empty() {
        let s = degree_summary(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0);
    }
}

/// Degree assortativity: the Pearson correlation between the (undirected)
/// degrees at the two endpoints of each edge. Random overlays should be
/// close to 0 — strong positive values mean hubs cluster together, which
/// concentrates failure risk (§2.3's "evenly distributed" requirement).
pub fn degree_assortativity(overlay: &Overlay) -> f64 {
    let und = overlay.undirected_adjacency();
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for v in overlay.alive_nodes() {
        for &t in &und[v] {
            let t = t as usize;
            if t > v {
                xs.push(und[v].len() as f64);
                ys.push(und[t].len() as f64);
                // Count each undirected edge in both orientations so the
                // correlation is symmetric.
                xs.push(und[t].len() as f64);
                ys.push(und[v].len() as f64);
            }
        }
    }
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Histogram of shortest-path lengths from `samples` random sources:
/// `distance → ordered-pair count`. Complements the average in
/// [`shortest_path_stats`] with the full distribution.
pub fn distance_histogram(overlay: &Overlay, samples: usize, seed: u64) -> BTreeMap<u32, usize> {
    let alive = overlay.alive_nodes();
    let mut hist = BTreeMap::new();
    if alive.len() < 2 {
        return hist;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sources: Vec<usize> = if samples >= alive.len() {
        alive.clone()
    } else {
        (0..samples).map(|_| alive[rng.gen_range(0..alive.len())]).collect()
    };
    for source in sources {
        let dist = bfs_distances(overlay, source);
        for &v in &alive {
            if v != source && dist[v] != u32::MAX {
                *hist.entry(dist[v]).or_insert(0) += 1;
            }
        }
    }
    hist
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn assortativity_of_regular_graph_is_zero() {
        // 4-cycle: all degrees equal → zero variance → defined as 0.
        let o = Overlay::new(vec![Some(vec![1]), Some(vec![2]), Some(vec![3]), Some(vec![0])]);
        assert_eq!(degree_assortativity(&o), 0.0);
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        // Star graphs are maximally disassortative: the hub (high degree)
        // only links to leaves (degree 1).
        let o = Overlay::new(vec![
            Some(vec![1, 2, 3, 4]),
            Some(vec![]),
            Some(vec![]),
            Some(vec![]),
            Some(vec![]),
        ]);
        assert!(degree_assortativity(&o) < -0.9);
    }

    #[test]
    fn assortativity_is_bounded() {
        let o =
            Overlay::new(vec![Some(vec![1, 2]), Some(vec![0]), Some(vec![0, 3]), Some(vec![2])]);
        let r = degree_assortativity(&o);
        assert!((-1.0..=1.0).contains(&r), "assortativity {r}");
    }

    #[test]
    fn distance_histogram_on_chain() {
        // 0 → 1 → 2 (directed chain), exhaustive sampling.
        let o = Overlay::new(vec![Some(vec![1]), Some(vec![2]), Some(vec![])]);
        let hist = distance_histogram(&o, 10, 7);
        // From 0: distances 1 and 2. From 1: distance 1. From 2: nothing.
        assert_eq!(hist.get(&1), Some(&2));
        assert_eq!(hist.get(&2), Some(&1));
    }

    #[test]
    fn distance_histogram_empty_graph() {
        let o = Overlay::new(vec![Some(vec![])]);
        assert!(distance_histogram(&o, 4, 7).is_empty());
    }
}
