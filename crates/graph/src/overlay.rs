//! Overlay graph snapshots.
//!
//! Partial views define a directed graph (§2.1): a node's out-neighbors are
//! the members of its partial view. [`Overlay`] captures one snapshot of
//! that graph, together with which nodes are alive, and is consumed by the
//! metric functions in [`crate::metrics`].

/// A directed overlay graph snapshot.
///
/// Node indices are dense (`0..n`). Dead nodes have no out-edges and are
/// excluded from every metric.
///
/// # Examples
///
/// ```
/// use hyparview_graph::Overlay;
///
/// // A 3-cycle: 0 → 1 → 2 → 0.
/// let overlay = Overlay::new(vec![
///     Some(vec![1]),
///     Some(vec![2]),
///     Some(vec![0]),
/// ]);
/// assert_eq!(overlay.len(), 3);
/// assert_eq!(overlay.alive_count(), 3);
/// assert_eq!(overlay.out_degree(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Overlay {
    adjacency: Vec<Vec<u32>>,
    alive: Vec<bool>,
}

impl Overlay {
    /// Builds a snapshot from per-node out-views; `None` marks a crashed
    /// node.
    ///
    /// Out-edges pointing outside `0..n` are rejected with a panic — they
    /// indicate a corrupted snapshot.
    ///
    /// # Panics
    ///
    /// Panics if any edge target is `>= n`.
    pub fn new(views: Vec<Option<Vec<usize>>>) -> Self {
        let n = views.len();
        let mut adjacency = Vec::with_capacity(n);
        let mut alive = Vec::with_capacity(n);
        for view in views {
            match view {
                Some(targets) => {
                    let row: Vec<u32> = targets
                        .into_iter()
                        .map(|t| {
                            assert!(t < n, "edge target {t} out of bounds (n = {n})");
                            t as u32
                        })
                        .collect();
                    adjacency.push(row);
                    alive.push(true);
                }
                None => {
                    adjacency.push(Vec::new());
                    alive.push(false);
                }
            }
        }
        Overlay { adjacency, alive }
    }

    /// Total number of nodes (alive and dead).
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Whether node `v` is alive.
    pub fn is_alive(&self, v: usize) -> bool {
        self.alive[v]
    }

    /// Indices of all alive nodes.
    pub fn alive_nodes(&self) -> Vec<usize> {
        (0..self.len()).filter(|v| self.alive[*v]).collect()
    }

    /// Out-neighbors of `v` (its partial view).
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[v]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Number of directed edges between alive nodes.
    pub fn edge_count(&self) -> usize {
        self.alive_nodes()
            .into_iter()
            .map(|v| self.adjacency[v].iter().filter(|t| self.alive[**t as usize]).count())
            .sum()
    }

    /// Builds the undirected projection's adjacency: `u ~ v` iff `u → v` or
    /// `v → u`, restricted to alive nodes. Used for connectivity and
    /// clustering metrics.
    pub fn undirected_adjacency(&self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut und: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            if !self.alive[v] {
                continue;
            }
            for &t in &self.adjacency[v] {
                let t_usize = t as usize;
                if !self.alive[t_usize] || t_usize == v {
                    continue;
                }
                if !und[v].contains(&t) {
                    und[v].push(t);
                }
                if !und[t_usize].contains(&(v as u32)) {
                    und[t_usize].push(v as u32);
                }
            }
        }
        und
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Overlay {
        Overlay::new(vec![Some(vec![1]), Some(vec![2]), Some(vec![0])])
    }

    #[test]
    fn construction_and_basic_accessors() {
        let o = triangle();
        assert_eq!(o.len(), 3);
        assert!(!o.is_empty());
        assert_eq!(o.alive_count(), 3);
        assert_eq!(o.out_neighbors(0), &[1]);
        assert_eq!(o.edge_count(), 3);
    }

    #[test]
    fn dead_nodes_have_no_edges() {
        let o = Overlay::new(vec![Some(vec![1, 2]), None, Some(vec![0])]);
        assert_eq!(o.alive_count(), 2);
        assert!(!o.is_alive(1));
        // Edge 0 → 1 exists structurally but points at a dead node, so it
        // is excluded from the alive edge count.
        assert_eq!(o.edge_count(), 2);
        assert_eq!(o.alive_nodes(), vec![0, 2]);
    }

    #[test]
    fn undirected_projection_symmetrises() {
        let o = Overlay::new(vec![Some(vec![1]), Some(vec![]), Some(vec![1])]);
        let und = o.undirected_adjacency();
        assert!(und[0].contains(&1));
        assert!(und[1].contains(&0));
        assert!(und[1].contains(&2));
        assert!(und[2].contains(&1));
    }

    #[test]
    fn undirected_projection_skips_dead() {
        let o = Overlay::new(vec![Some(vec![1]), None, Some(vec![1])]);
        let und = o.undirected_adjacency();
        assert!(und[0].is_empty());
        assert!(und[1].is_empty());
        assert!(und[2].is_empty());
    }

    #[test]
    fn undirected_projection_dedups_mutual_edges() {
        let o = Overlay::new(vec![Some(vec![1]), Some(vec![0])]);
        let und = o.undirected_adjacency();
        assert_eq!(und[0], vec![1]);
        assert_eq!(und[1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        Overlay::new(vec![Some(vec![5])]);
    }

    #[test]
    fn empty_overlay() {
        let o = Overlay::new(vec![]);
        assert!(o.is_empty());
        assert_eq!(o.alive_count(), 0);
    }
}
