//! Property-based tests of the graph metrics on random overlays.

use hyparview_graph::{
    bfs_distances, clustering_coefficient, connectivity, degree_summary, in_degrees, out_degrees,
    shortest_path_stats, Overlay,
};
use proptest::prelude::*;

/// Random overlay: n nodes, each with up to `d` random out-edges, some dead.
fn arb_overlay() -> impl Strategy<Value = Overlay> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(0usize..n, 0..6)),
            n..=n,
        )
        .prop_map(|rows| {
            Overlay::new(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, (alive, mut targets))| {
                        targets.retain(|t| *t != i);
                        alive.then_some(targets)
                    })
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Clustering coefficient is always within [0, 1].
    #[test]
    fn clustering_is_bounded(overlay in arb_overlay()) {
        let c = clustering_coefficient(&overlay);
        prop_assert!((0.0..=1.0).contains(&c), "clustering {c}");
    }

    /// Total in-degree equals total out-degree (each alive→alive edge is
    /// counted once on each side).
    #[test]
    fn degree_totals_balance(overlay in arb_overlay()) {
        let in_total: usize = in_degrees(&overlay).iter().sum();
        let out_total: usize = out_degrees(&overlay).iter().sum();
        prop_assert_eq!(in_total, out_total);
        prop_assert_eq!(out_total, overlay.edge_count());
    }

    /// BFS distances satisfy: source = 0, neighbors ≤ 1, and every finite
    /// distance is witnessed by an in-edge from a node one step closer.
    #[test]
    fn bfs_distances_are_consistent(overlay in arb_overlay()) {
        let alive = overlay.alive_nodes();
        if alive.is_empty() {
            return Ok(());
        }
        let source = alive[0];
        let dist = bfs_distances(&overlay, source);
        prop_assert_eq!(dist[source], 0);
        for v in &alive {
            let d = dist[*v];
            if d == u32::MAX || d == 0 {
                continue;
            }
            let has_witness = alive.iter().any(|u| {
                dist[*u] == d - 1
                    && overlay.out_neighbors(*u).contains(&(*v as u32))
            });
            prop_assert!(has_witness, "node {v} at distance {d} has no predecessor");
        }
    }

    /// Component sizes sum to the number of alive nodes.
    #[test]
    fn components_partition_alive_nodes(overlay in arb_overlay()) {
        let report = connectivity(&overlay);
        prop_assert!(report.largest_component <= overlay.alive_count());
        if overlay.alive_count() > 0 {
            prop_assert!(report.components >= 1);
            prop_assert!(report.largest_component >= 1);
        }
        prop_assert!(report.isolated <= overlay.alive_count());
    }

    /// Sampled path stats: average ≤ max, reachable fraction within [0, 1].
    #[test]
    fn path_stats_are_sane(overlay in arb_overlay(), seed in any::<u64>()) {
        let stats = shortest_path_stats(&overlay, 10, seed);
        prop_assert!(stats.average >= 0.0);
        prop_assert!(stats.average <= stats.max as f64 + 1e-9);
        prop_assert!((0.0..=1.0).contains(&stats.reachable_fraction));
    }

    /// Exhaustive sampling equals sampling with more sources than nodes.
    #[test]
    fn exhaustive_sampling_is_deterministic(overlay in arb_overlay()) {
        let a = shortest_path_stats(&overlay, 1000, 1);
        let b = shortest_path_stats(&overlay, 1000, 2);
        prop_assert_eq!(a, b, "seed must not matter once sampling is exhaustive");
    }

    /// Degree summary is consistent with the raw sequence.
    #[test]
    fn degree_summary_consistent(degrees in proptest::collection::vec(0usize..50, 1..64)) {
        let s = degree_summary(&degrees);
        prop_assert!(s.min <= s.max);
        prop_assert!(s.mean >= s.min as f64 - 1e-9);
        prop_assert!(s.mean <= s.max as f64 + 1e-9);
        prop_assert!(s.stddev >= 0.0);
    }
}
