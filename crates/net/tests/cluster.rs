//! End-to-end tests of the TCP runtime on the loopback interface: the
//! reproduction's stand-in for the paper's planned PlanetLab deployment.

use hyparview_net::{BroadcastMode, NetConfig, Node};
use std::time::{Duration, Instant};

fn config() -> NetConfig {
    NetConfig {
        shuffle_interval: Duration::from_millis(100),
        seed: Some(7),
        ..NetConfig::default()
    }
}

fn spawn_cluster_with<F: Fn() -> NetConfig>(n: usize, make: F) -> Vec<Node> {
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let mut cfg = make();
        cfg.seed = Some(100 + i as u64);
        let node = Node::spawn("127.0.0.1:0".parse().unwrap(), cfg).expect("spawn node");
        if let Some(contact) = nodes.first() {
            let contact: &Node = contact;
            node.join(contact.addr());
        }
        nodes.push(node);
    }
    nodes
}

fn spawn_cluster(n: usize) -> Vec<Node> {
    spawn_cluster_with(n, config)
}

fn wait_until<F: FnMut() -> bool>(timeout: Duration, mut cond: F) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// The overlay is ready when every link is symmetric and the union graph is
/// connected — only then is a flood guaranteed to reach everyone.
fn overlay_ready(nodes: &[Node]) -> bool {
    let addrs: Vec<_> = nodes.iter().map(|n| n.addr()).collect();
    let views: Vec<Vec<_>> = nodes.iter().map(|n| n.active_view()).collect();
    if views.iter().any(|v| v.is_empty()) {
        return false;
    }
    // Symmetry.
    for (i, view) in views.iter().enumerate() {
        for peer in view {
            let Some(j) = addrs.iter().position(|a| a == peer) else { return false };
            if !views[j].contains(&addrs[i]) {
                return false;
            }
        }
    }
    // Connectivity (BFS from node 0).
    let mut seen = vec![false; nodes.len()];
    let mut queue = vec![0usize];
    seen[0] = true;
    while let Some(v) = queue.pop() {
        for peer in &views[v] {
            if let Some(j) = addrs.iter().position(|a| a == peer) {
                if !seen[j] {
                    seen[j] = true;
                    queue.push(j);
                }
            }
        }
    }
    seen.iter().all(|s| *s)
}

fn wait_for_overlay(nodes: &[Node]) {
    assert!(
        wait_until(Duration::from_secs(10), || overlay_ready(nodes)),
        "overlay did not converge: {:?}",
        nodes.iter().map(|n| (n.addr(), n.active_view())).collect::<Vec<_>>()
    );
}

#[test]
fn two_nodes_become_neighbors() {
    let nodes = spawn_cluster(2);
    assert!(
        wait_until(Duration::from_secs(5), || {
            nodes[0].active_view().contains(&nodes[1].addr())
                && nodes[1].active_view().contains(&nodes[0].addr())
        }),
        "join did not produce a symmetric link: {:?} / {:?}",
        nodes[0].active_view(),
        nodes[1].active_view()
    );
}

#[test]
fn broadcast_reaches_every_node() {
    let n = 8;
    let nodes = spawn_cluster(n);
    wait_for_overlay(&nodes);

    let id = nodes[0].broadcast(b"flood me".to_vec());
    for (i, node) in nodes.iter().enumerate() {
        let delivery = node
            .deliveries()
            .recv_timeout(Duration::from_secs(5))
            .unwrap_or_else(|_| panic!("node {i} missed the broadcast"));
        assert_eq!(delivery.id, id);
        assert_eq!(delivery.payload.as_ref(), b"flood me");
    }
}

#[test]
fn multiple_broadcasts_are_deduplicated() {
    let nodes = spawn_cluster(5);
    wait_for_overlay(&nodes);

    let mut ids = Vec::new();
    for i in 0..10 {
        ids.push(nodes[i % nodes.len()].broadcast(format!("msg-{i}").into_bytes()));
    }
    for (i, node) in nodes.iter().enumerate() {
        let mut got = Vec::new();
        while got.len() < ids.len() {
            match node.deliveries().recv_timeout(Duration::from_secs(5)) {
                Ok(d) => got.push(d.id),
                Err(_) => panic!("node {i} only saw {}/{} messages", got.len(), ids.len()),
            }
        }
        got.sort_unstable();
        let mut expected = ids.clone();
        expected.sort_unstable();
        assert_eq!(got, expected, "node {i} delivered a wrong/duplicated set");
    }
}

#[test]
fn crash_is_detected_and_view_repairs() {
    let nodes = spawn_cluster(6);
    wait_for_overlay(&nodes);

    // Run a few shuffles so passive views fill.
    std::thread::sleep(Duration::from_millis(600));

    let victim_addr = nodes[1].addr();
    let victim = nodes.into_iter().nth(1).unwrap();
    // Crash the victim and watch a dedicated survivor notice and repair.
    let watcher = Node::spawn("127.0.0.1:0".parse().unwrap(), config()).unwrap();
    watcher.join(victim_addr);
    assert!(wait_until(Duration::from_secs(5), || watcher.active_view().contains(&victim_addr)));

    victim.shutdown(); // closes all its connections

    assert!(
        wait_until(Duration::from_secs(10), || !watcher.active_view().contains(&victim_addr)),
        "watcher never evicted the crashed peer: {:?}",
        watcher.active_view()
    );
}

#[test]
fn graceful_leave_then_shutdown_clears_views() {
    let mut nodes = spawn_cluster(3);
    wait_for_overlay(&nodes);
    let leaver = nodes.pop().unwrap();
    let leaver_addr = leaver.addr();
    // A graceful departure is leave (DISCONNECT to all active peers)
    // followed by shutdown. Note that leave alone is *not* enough for the
    // overlay to forget a node: survivors move it to their passive views
    // and may immediately promote it back — by design (§4.5).
    leaver.leave();
    std::thread::sleep(Duration::from_millis(200));
    leaver.shutdown();
    assert!(
        wait_until(Duration::from_secs(10), || {
            nodes.iter().all(|n| !n.active_view().contains(&leaver_addr))
        }),
        "leaver still present in active views"
    );
}

#[test]
fn plumtree_broadcast_reaches_every_node() {
    let nodes = spawn_cluster_with(8, || config().with_broadcast_mode(BroadcastMode::Plumtree));
    wait_for_overlay(&nodes);

    // Several rounds: the first broadcasts prune the overlay into a tree,
    // later ones must still reach everyone (over fewer payload links).
    for round in 0..5 {
        let payload = format!("tree-{round}").into_bytes();
        let id = nodes[round % nodes.len()].broadcast(payload.clone());
        for (i, node) in nodes.iter().enumerate() {
            let delivery = node
                .deliveries()
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_else(|_| panic!("node {i} missed plumtree broadcast {round}"));
            assert_eq!(delivery.id, id);
            assert_eq!(delivery.payload.as_ref(), payload.as_slice());
        }
    }
}

#[test]
fn plumtree_eager_links_stay_within_active_view() {
    let nodes = spawn_cluster_with(6, || config().with_broadcast_mode(BroadcastMode::Plumtree));
    wait_for_overlay(&nodes);
    for (i, node) in nodes.iter().take(3).enumerate() {
        node.broadcast(format!("warm-{i}").into_bytes());
    }
    // Drain all deliveries so the traffic quiesces.
    for node in &nodes {
        for _ in 0..3 {
            let _ = node.deliveries().recv_timeout(Duration::from_secs(5));
        }
    }
    // A node's eager set may legitimately be *empty* at quiescence (its
    // last payload exchanges all ended in Prunes; only the next broadcast
    // re-promotes its parent), so each polling round sends a fresh probe
    // broadcast before evaluating. The per-node snapshot is taken under a
    // single lock — separate accessor calls can mix event-loop iterations.
    let consistent = |attempt: usize| {
        let _ = nodes[0].broadcast(format!("probe-{attempt}").into_bytes());
        std::thread::sleep(Duration::from_millis(150));
        for node in &nodes {
            while node.deliveries().try_recv().is_ok() {}
        }
        nodes.iter().all(|n| {
            let (active, eager, lazy) = n.broadcast_links();
            !eager.is_empty()
                && eager.iter().all(|p| active.contains(p) && !lazy.contains(p))
                && lazy.iter().all(|p| active.contains(p))
        })
    };
    assert!(
        (0..40).any(consistent),
        "eager/lazy sets inconsistent with active views: {:?}",
        nodes
            .iter()
            .map(|n| (n.addr(), n.active_view(), n.eager_peers(), n.lazy_peers()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn default_netconfig_enables_adaptive_plumtree() {
    // The runtime's defaults carry the §3.8 adaptive behavior (tree
    // optimization + lazy batching); the simulator's PlumtreeConfig stays
    // static for paper fidelity.
    let defaults = NetConfig::default();
    assert_eq!(
        defaults.plumtree.optimization_threshold,
        Some(hyparview_net::DEFAULT_OPTIMIZATION_THRESHOLD),
        "tree optimization must be on by default in the TCP runtime"
    );
    assert_eq!(
        defaults.plumtree.lazy_flush_interval,
        hyparview_net::DEFAULT_LAZY_FLUSH_INTERVAL,
        "lazy batching must be on by default in the TCP runtime"
    );
    assert_eq!(
        hyparview_net::PlumtreeConfig::default().optimization_threshold,
        None,
        "the restore-paper-fidelity escape hatch must stay static"
    );
}

#[test]
fn adaptive_default_plumtree_broadcast_reaches_every_node() {
    // The stock NetConfig now ships tree optimization + lazy batching on:
    // broadcasts must still deliver everywhere, with IHaveBatch frames on
    // the lazy links.
    let nodes = spawn_cluster_with(6, || config().with_broadcast_mode(BroadcastMode::Plumtree));
    wait_for_overlay(&nodes);
    for round in 0..4 {
        let payload = format!("adaptive-{round}").into_bytes();
        let id = nodes[round % nodes.len()].broadcast(payload.clone());
        for (i, node) in nodes.iter().enumerate() {
            let delivery = node
                .deliveries()
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_else(|_| panic!("node {i} missed adaptive broadcast {round}"));
            assert_eq!(delivery.id, id);
            assert_eq!(delivery.payload.as_ref(), payload.as_slice());
        }
    }
}

#[test]
fn static_plumtree_config_restores_paper_fidelity() {
    // Opting back out of the adaptive defaults (the paper's static trees)
    // must keep working: `.with_plumtree(PlumtreeConfig::default())`.
    let nodes = spawn_cluster_with(5, || {
        config()
            .with_broadcast_mode(BroadcastMode::Plumtree)
            .with_plumtree(hyparview_net::PlumtreeConfig::default())
    });
    wait_for_overlay(&nodes);
    for round in 0..3 {
        let payload = format!("static-{round}").into_bytes();
        let id = nodes[round % nodes.len()].broadcast(payload.clone());
        for (i, node) in nodes.iter().enumerate() {
            let delivery = node
                .deliveries()
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_else(|_| panic!("node {i} missed static broadcast {round}"));
            assert_eq!(delivery.id, id);
            assert_eq!(delivery.payload.as_ref(), payload.as_slice());
        }
    }
}

#[test]
fn deliveries_report_hop_counts() {
    let nodes = spawn_cluster(4);
    wait_for_overlay(&nodes);
    nodes[0].broadcast(b"hops".to_vec());
    let own = nodes[0].deliveries().recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(own.hops, 0, "origin delivers at hop 0");
    let remote = nodes[1].deliveries().recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(remote.hops >= 1);
}
