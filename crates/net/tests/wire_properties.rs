//! Property-based tests of the wire codec: round-trips for arbitrary
//! messages, arbitrary fragmentation, and no panics on arbitrary garbage.

use bytes::{Buf, Bytes};
use hyparview_core::{Message, Priority};
use hyparview_net::wire::{decode, encode, Frame, FrameReader};
use proptest::prelude::*;
use std::net::SocketAddr;

fn arb_addr() -> impl Strategy<Value = SocketAddr> {
    prop_oneof![
        (any::<[u8; 4]>(), any::<u16>())
            .prop_map(|(ip, port)| { SocketAddr::new(std::net::IpAddr::V4(ip.into()), port) }),
        (any::<[u8; 16]>(), any::<u16>())
            .prop_map(|(ip, port)| { SocketAddr::new(std::net::IpAddr::V6(ip.into()), port) }),
    ]
}

fn arb_membership() -> impl Strategy<Value = Message<SocketAddr>> {
    prop_oneof![
        Just(Message::Join),
        (arb_addr(), any::<u8>())
            .prop_map(|(new_node, ttl)| Message::ForwardJoin { new_node, ttl }),
        Just(Message::ForwardJoinReply),
        prop_oneof![Just(Priority::High), Just(Priority::Low)]
            .prop_map(|priority| Message::Neighbor { priority }),
        any::<bool>().prop_map(|accepted| Message::NeighborReply { accepted }),
        Just(Message::Disconnect),
        (arb_addr(), any::<u8>(), proptest::collection::vec(arb_addr(), 0..40))
            .prop_map(|(origin, ttl, nodes)| Message::Shuffle { origin, ttl, nodes }),
        proptest::collection::vec(arb_addr(), 0..40)
            .prop_map(|nodes| Message::ShuffleReply { nodes }),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_addr().prop_map(|sender| Frame::Hello { sender }),
        arb_membership().prop_map(Frame::Membership),
        (any::<u128>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..512)).prop_map(
            |(id, hops, payload)| Frame::Gossip { id, hops, payload: Bytes::from(payload) }
        ),
        (any::<u128>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..512)).prop_map(
            |(id, round, payload)| Frame::PlumtreeGossip {
                id,
                round,
                payload: Bytes::from(payload)
            }
        ),
        (any::<u128>(), any::<u32>()).prop_map(|(id, round)| Frame::PlumtreeIHave { id, round }),
        proptest::collection::vec((any::<u128>(), any::<u32>()), 1..64)
            .prop_map(|anns| Frame::PlumtreeIHaveBatch { anns }),
        (proptest::option::of(any::<u128>()), any::<u32>())
            .prop_map(|(id, round)| Frame::PlumtreeGraft { id, round }),
        Just(Frame::PlumtreePrune),
    ]
}

/// Deterministic `Hello` round-trip over both address families: the first
/// frame on every connection must survive encode → decode bit-exactly, and
/// its byte layout (length prefix, tag 0, family byte) must stay stable.
#[test]
fn hello_round_trip_both_families() {
    for text in ["127.0.0.1:4000", "0.0.0.0:0", "[::1]:9000", "[2001:db8::7]:65535"] {
        let sender: SocketAddr = text.parse().unwrap();
        let frame = Frame::Hello { sender };
        let mut encoded = encode(&frame);
        let len = encoded.get_u32() as usize;
        assert_eq!(len, encoded.remaining(), "length prefix covers exactly the payload");
        assert_eq!(encoded[0], 0, "Hello carries tag 0");
        assert_eq!(
            encoded[1],
            if sender.is_ipv4() { 4 } else { 6 },
            "family byte matches the address"
        );
        assert_eq!(decode(encoded).unwrap(), frame, "round-trips for {text}");
    }
}

/// Deterministic worst-case splits: every cut point of a frame — including
/// each position *inside* the 4-byte length prefix and the tag byte — must
/// leave the reader waiting, and the remainder must complete the identical
/// frame with nothing left buffered.
#[test]
fn mid_header_splits_resume_to_the_same_frame() {
    let frames = [
        Frame::Hello { sender: "127.0.0.1:4000".parse().unwrap() },
        Frame::Membership(Message::Join),
        Frame::Gossip { id: 42, hops: 7, payload: Bytes::from_static(b"split me") },
        Frame::PlumtreeIHaveBatch { anns: vec![(1, 2), (3, 4)] },
    ];
    for frame in &frames {
        let bytes = encode(frame);
        for split in 1..bytes.len() {
            let mut reader = FrameReader::new();
            reader.extend(&bytes[..split]);
            assert_eq!(
                reader.next_frame().unwrap(),
                None,
                "partial bytes (cut at {split}) must not yield a frame"
            );
            reader.extend(&bytes[split..]);
            assert_eq!(
                reader.next_frame().unwrap().as_ref(),
                Some(frame),
                "resumed decode differs (cut at {split})"
            );
            assert_eq!(reader.buffered(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dribbling a frame stream into the reader in fixed 1..k byte slices
    /// yields exactly the frames the one-shot `decode` path produces for
    /// the same bytes — fragmentation can reorder nothing, lose nothing,
    /// invent nothing.
    #[test]
    fn fragmented_decode_matches_one_shot(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        k in 1usize..16,
    ) {
        let one_shot: Vec<Frame> = frames
            .iter()
            .map(|f| {
                let mut encoded = encode(f);
                let _ = encoded.get_u32(); // strip the length prefix
                decode(encoded).unwrap()
            })
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        let mut reader = FrameReader::new();
        let mut dribbled = Vec::new();
        for chunk in stream.chunks(k) {
            reader.extend(chunk);
            while let Some(frame) = reader.next_frame().unwrap() {
                dribbled.push(frame);
            }
        }
        prop_assert_eq!(dribbled, one_shot);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// encode → decode is the identity for every frame.
    #[test]
    fn round_trip(frame in arb_frame()) {
        let mut encoded = encode(&frame);
        let len = encoded.get_u32() as usize;
        prop_assert_eq!(len, encoded.remaining());
        let decoded = decode(encoded).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// The frame reader reassembles any fragmentation of any frame stream.
    #[test]
    fn reader_handles_arbitrary_fragmentation(
        frames in proptest::collection::vec(arb_frame(), 1..10),
        chunk_sizes in proptest::collection::vec(1usize..64, 1..64),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut chunk_iter = chunk_sizes.iter().cycle();
        while offset < stream.len() {
            let chunk = (*chunk_iter.next().unwrap()).min(stream.len() - offset);
            reader.extend(&stream[offset..offset + chunk]);
            offset += chunk;
            while let Some(frame) = reader.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// Arbitrary garbage never panics the decoder — it errors or parses.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(Bytes::from(bytes));
    }

    /// Arbitrary garbage fed through the frame reader never panics either;
    /// it may produce frames, an error, or wait for more bytes.
    #[test]
    fn reader_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        for _ in 0..16 {
            match reader.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A truncated valid frame never decodes successfully to a *different*
    /// frame — it must report an error or wait for more input.
    #[test]
    fn truncation_is_detected(frame in arb_frame(), cut in 1usize..32) {
        let encoded = encode(&frame);
        if encoded.len() <= 4 {
            return Ok(());
        }
        let cut = cut.min(encoded.len() - 4 - 1).max(1);
        let truncated = &encoded[..encoded.len() - cut];
        let mut reader = FrameReader::new();
        reader.extend(truncated);
        match reader.next_frame() {
            Ok(None) => {}                      // waiting for the rest: correct
            Err(_) => {}                        // detected corruption: correct
            Ok(Some(decoded)) => prop_assert_eq!(decoded, frame, "decoded a different frame from a truncation"),
        }
    }
}
