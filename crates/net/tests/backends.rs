//! Differential tests of the two transport backends: the epoll reactor and
//! the legacy thread-per-connection transport must be byte-compatible on
//! the wire and deliver identical results for the same scenario. These
//! tests pin both backends explicitly, so they exercise the same pairs
//! regardless of which backend the `threaded-transport` feature makes the
//! default.

use hyparview_core::Message;
use hyparview_net::wire::{encode, Frame};
use hyparview_net::{Cluster, NetConfig, Node, TransportBackend};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn config(backend: TransportBackend) -> NetConfig {
    NetConfig {
        shuffle_interval: Duration::from_millis(100),
        seed: Some(7),
        backend,
        ..NetConfig::default()
    }
}

fn wait_until<F: FnMut() -> bool>(timeout: Duration, mut cond: F) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

fn spawn_cluster(n: usize, backend: TransportBackend) -> Vec<Node> {
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let mut cfg = config(backend);
        cfg.seed = Some(100 + i as u64);
        let node = Node::spawn("127.0.0.1:0".parse().unwrap(), cfg).expect("spawn node");
        if let Some(contact) = nodes.first() {
            let contact: &Node = contact;
            node.join(contact.addr());
        }
        nodes.push(node);
    }
    nodes
}

fn all_connected(nodes: &[Node]) -> bool {
    nodes.iter().all(|n| !n.active_view().is_empty())
}

/// Waits until every node holds a non-empty active view, re-issuing joins
/// through the first node for any that are stranded. A join storm through
/// one contact can displace a node faster than shuffles repair it, and
/// HyParView cannot self-repair an *empty* active view (shuffles need a
/// live neighbor), so a plain wait is flaky under CPU contention.
fn connect_overlay(nodes: &[Node], timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if all_connected(nodes) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        for node in nodes {
            if node.active_view().is_empty() {
                node.join(nodes[0].addr());
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}

/// Feeds `bytes` into a raw connection one byte at a time with a flush
/// after each, maximizing the chance every read on the receiving side sees
/// a partial frame.
fn dribble(stream: &mut TcpStream, bytes: &[u8]) {
    for byte in bytes {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// End-to-end partial-frame resumption: a `Hello` + `Join` dribbled
/// byte-by-byte into a live node's listener (every header and payload
/// boundary split) must have exactly the effect of a whole-frame write —
/// the joiner enters the active view.
fn dribbled_join_is_decoded(backend: TransportBackend) {
    let node = Node::spawn("127.0.0.1:0".parse().unwrap(), config(backend)).unwrap();
    // The claimed identity must accept the node's answering connection, or
    // the failure detector would evict it again; a bound listener whose
    // backlog absorbs the connect is enough.
    let fake_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake: SocketAddr = fake_listener.local_addr().unwrap();

    let mut stream = TcpStream::connect(node.addr()).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&encode(&Frame::Hello { sender: fake }));
    bytes.extend_from_slice(&encode(&Frame::Membership(Message::Join)));
    dribble(&mut stream, &bytes);

    assert!(
        wait_until(Duration::from_secs(5), || node.active_view().contains(&fake)),
        "[{backend}] dribbled Join never joined: {:?}",
        node.active_view()
    );
}

#[test]
fn dribbled_join_is_decoded_on_reactor() {
    dribbled_join_is_decoded(TransportBackend::Reactor);
}

#[test]
fn dribbled_join_is_decoded_on_threaded() {
    dribbled_join_is_decoded(TransportBackend::Threaded);
}

/// Garbage before the `Hello` must not crash or wedge the node; a valid
/// join afterwards still works on both backends.
fn pre_hello_garbage_is_dropped(backend: TransportBackend) {
    let node = Node::spawn("127.0.0.1:0".parse().unwrap(), config(backend)).unwrap();
    {
        let mut garbage = TcpStream::connect(node.addr()).unwrap();
        // A plausible length prefix followed by junk (tag 0xFF).
        garbage.write_all(&[0, 0, 0, 4, 0xFF, 1, 2, 3]).unwrap();
        garbage.flush().unwrap();
    }
    let peer = Node::spawn("127.0.0.1:0".parse().unwrap(), config(backend)).unwrap();
    peer.join(node.addr());
    assert!(
        wait_until(Duration::from_secs(5), || node.active_view().contains(&peer.addr())),
        "[{backend}] node wedged by garbage connection"
    );
}

#[test]
fn pre_hello_garbage_is_dropped_on_reactor() {
    pre_hello_garbage_is_dropped(TransportBackend::Reactor);
}

#[test]
fn pre_hello_garbage_is_dropped_on_threaded() {
    pre_hello_garbage_is_dropped(TransportBackend::Threaded);
}

/// The two backends speak the same wire protocol: a mixed overlay (reactor
/// node + threaded node) forms links and floods across the boundary.
#[test]
fn mixed_backend_overlay_interoperates() {
    let reactor =
        Node::spawn("127.0.0.1:0".parse().unwrap(), config(TransportBackend::Reactor)).unwrap();
    let threaded =
        Node::spawn("127.0.0.1:0".parse().unwrap(), config(TransportBackend::Threaded)).unwrap();
    threaded.join(reactor.addr());
    assert!(
        wait_until(Duration::from_secs(5), || {
            reactor.active_view().contains(&threaded.addr())
                && threaded.active_view().contains(&reactor.addr())
        }),
        "mixed-backend link never formed: {:?} / {:?}",
        reactor.active_view(),
        threaded.active_view()
    );

    let id = reactor.broadcast(b"across the backend boundary".to_vec());
    let delivery = threaded.deliveries().recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(delivery.id, id);
    assert_eq!(delivery.payload.as_ref(), b"across the backend boundary");
}

/// Runs the same smoke scenario (5 nodes, 10 round-robin broadcasts) on one
/// backend and returns every node's sorted delivered payload set.
fn delivered_sets(backend: TransportBackend) -> Vec<Vec<Vec<u8>>> {
    let nodes = spawn_cluster(5, backend);
    assert!(
        connect_overlay(&nodes, Duration::from_secs(10)),
        "[{backend}] overlay never connected"
    );
    let count = 10;
    for i in 0..count {
        nodes[i % nodes.len()].broadcast(format!("m-{i}").into_bytes());
        // Pace the broadcasts so each flood completes against a settled
        // overlay; this keeps the scenario deterministic enough to compare.
        std::thread::sleep(Duration::from_millis(30));
    }
    nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut got = Vec::new();
            while got.len() < count {
                match node.deliveries().recv_timeout(Duration::from_secs(5)) {
                    Ok(d) => got.push(d.payload.to_vec()),
                    Err(_) => panic!("[{backend}] node {i} saw {}/{count} messages", got.len()),
                }
            }
            got.sort();
            got
        })
        .collect()
}

/// The acceptance check of the refactor: the same cluster scenario produces
/// *identical* delivery results on both backends (100% reliability each, so
/// the per-node sets match element for element).
#[test]
fn backends_deliver_identical_results() {
    let reactor = delivered_sets(TransportBackend::Reactor);
    let threaded = delivered_sets(TransportBackend::Threaded);
    assert_eq!(reactor, threaded, "backends disagree on delivered message sets");
}

/// Many nodes on ONE shared reactor (the `Cluster` runtime proper, not the
/// one-node special case): the overlay converges and a flood reaches every
/// node, all on a single epoll thread.
#[test]
fn shared_cluster_floods_all_nodes() {
    let cluster = Cluster::new().unwrap();
    let n = 20;
    let mut nodes: Vec<Node> = Vec::with_capacity(n);
    for i in 0..n {
        let mut cfg = config(TransportBackend::Reactor);
        cfg.seed = Some(900 + i as u64);
        let node = cluster.spawn_node("127.0.0.1:0".parse().unwrap(), cfg).unwrap();
        if let Some(contact) = nodes.first() {
            let contact: &Node = contact;
            node.join(contact.addr());
        }
        nodes.push(node);
    }
    assert!(
        connect_overlay(&nodes, Duration::from_secs(10)),
        "shared-reactor overlay never connected: {:?}",
        nodes.iter().map(|n| (n.addr(), n.active_view())).collect::<Vec<_>>()
    );
    let id = nodes[0].broadcast(b"one thread, many nodes".to_vec());
    for (i, node) in nodes.iter().enumerate() {
        let delivery = node
            .deliveries()
            .recv_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("node {i} missed the broadcast"));
        assert_eq!(delivery.id, id);
    }
}

/// Removing one node from a shared reactor must not disturb its siblings:
/// the survivors detect the crash, repair, and keep flooding.
#[test]
fn shared_cluster_survives_node_removal() {
    let cluster = Cluster::new().unwrap();
    let mut nodes: Vec<Node> = Vec::new();
    for i in 0..5 {
        let mut cfg = config(TransportBackend::Reactor);
        cfg.seed = Some(300 + i as u64);
        let node = cluster.spawn_node("127.0.0.1:0".parse().unwrap(), cfg).unwrap();
        if let Some(contact) = nodes.first() {
            let contact: &Node = contact;
            node.join(contact.addr());
        }
        nodes.push(node);
    }
    assert!(connect_overlay(&nodes, Duration::from_secs(10)));

    let victim = nodes.pop().unwrap();
    let victim_addr = victim.addr();
    victim.shutdown();

    assert!(
        wait_until(Duration::from_secs(10), || {
            nodes.iter().all(|n| !n.active_view().contains(&victim_addr))
        }),
        "survivors never evicted the removed node"
    );
    let id = nodes[0].broadcast(b"still alive".to_vec());
    for (i, node) in nodes.iter().enumerate() {
        let delivery = node
            .deliveries()
            .recv_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("survivor {i} missed the post-removal broadcast"));
        assert_eq!(delivery.id, id);
    }
}
