//! The node runtime handle: the application-facing [`Node`] driving the
//! sans-io [`HyParView`](hyparview_core::HyParView) state machine plus the
//! gossip broadcast layer (`NodeCore`) over real TCP.
//!
//! Two interchangeable I/O backends execute the same core
//! ([`TransportBackend`]):
//!
//! * [`TransportBackend::Reactor`] (default) — the node registers with a
//!   shared epoll [`Reactor`](crate::reactor), which multiplexes its event
//!   loop, timers and every connection onto one thread.
//!   [`Node::spawn`] is the single-node special case of
//!   [`Cluster::spawn_node`](crate::Cluster::spawn_node), which drives
//!   thousands of nodes in one process.
//! * [`TransportBackend::Threaded`] — the original thread-per-connection
//!   [`Transport`] plus one event-loop thread per node; kept as the
//!   differential baseline (the `threaded-transport` cfg feature flips the
//!   default, mirroring the simulator's `heap-queue`).
//!
//! This is the deployable form of the system the paper sketches for its
//! PlanetLab experiment (§6): real sockets, real connection failures, the
//! same protocol core as the simulator.

use crate::core::{NodeCore, NodeCtx, Shared};
use crate::reactor::{Cluster, ReactorNode};
use crate::transport::{Transport, TransportConfig, TransportEvent};
use bytes::Bytes;
use crossbeam::channel::{bounded, tick, unbounded, Receiver, Sender};
use hyparview_core::Config;
use hyparview_obsv::{Registry, TraceEvent};
use hyparview_plumtree::{BroadcastMode, PlumtreeConfig, PlumtreeTimer};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::core::{Delivery, NodeStats};

/// Round-difference threshold of the runtime's default tree optimization
/// (Plumtree §3.8): an `IHave` announcing a path at least this many rounds
/// shorter than the eager delivery swaps the lazy link into the tree. The
/// value matches the `plumtree_adaptive`/`plumtree_latency` benches, where
/// it flattens healed trees without ever costing reliability.
pub const DEFAULT_OPTIMIZATION_THRESHOLD: u32 = 2;

/// Default lazy-announcement flush interval, in Plumtree timer units
/// (× [`NetConfig::plumtree_timer_unit`] ⇒ 40 ms at the default unit).
/// Folds concurrent broadcasts' announcements into `IHaveBatch` frames
/// while keeping the worst-case repair delay small.
pub const DEFAULT_LAZY_FLUSH_INTERVAL: u64 = 2;

/// Which I/O runtime executes a node's protocol core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportBackend {
    /// One shared epoll reactor drives listener, connections and timers —
    /// the scalable default (thousands of nodes per process).
    Reactor,
    /// Thread-per-connection [`Transport`] plus an event-loop thread per
    /// node — the original runtime, kept as the differential baseline.
    Threaded,
}

impl Default for TransportBackend {
    /// [`TransportBackend::Reactor`], unless the `threaded-transport` cfg
    /// feature flips the workspace back to the legacy backend (the same
    /// pattern as the simulator's `heap-queue` feature).
    fn default() -> Self {
        if cfg!(feature = "threaded-transport") {
            TransportBackend::Threaded
        } else {
            TransportBackend::Reactor
        }
    }
}

impl std::fmt::Display for TransportBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportBackend::Reactor => write!(f, "reactor"),
            TransportBackend::Threaded => write!(f, "threaded"),
        }
    }
}

/// Runtime configuration for a [`Node`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// HyParView protocol parameters.
    pub protocol: Config,
    /// Interval between shuffle ticks (the paper's membership cycle).
    pub shuffle_interval: Duration,
    /// RNG seed for the protocol instance (`None` = from entropy).
    pub seed: Option<u64>,
    /// Transport tuning (shared by both backends: `writer_queue` bounds
    /// the per-peer outbound queue, `connect_timeout` applies to the
    /// threaded backend's blocking connects).
    pub transport: TransportConfig,
    /// How many recent gossip ids to remember for duplicate suppression
    /// (flood mode) / how many payloads the Plumtree cache keeps.
    pub dedup_capacity: usize,
    /// How broadcast payloads are disseminated.
    pub broadcast_mode: BroadcastMode,
    /// Which I/O backend runs the node (see [`TransportBackend`]).
    pub backend: TransportBackend,
    /// Plumtree tuning (timeouts in abstract units, see
    /// [`NetConfig::plumtree_timer_unit`]). The cache capacity is
    /// overridden by `dedup_capacity` so both engines share one knob.
    ///
    /// Unlike the simulator (which keeps the paper-fidelity static tree by
    /// default), the runtime defaults to the *adaptive* §3.8 behavior:
    /// tree optimization at [`DEFAULT_OPTIMIZATION_THRESHOLD`] and lazy
    /// batching at [`DEFAULT_LAZY_FLUSH_INTERVAL`] timer units. Real
    /// sockets always have variable latency, and the `plumtree_latency`
    /// bench shows optimization strictly flattening healed trees at 100%
    /// reliability there. Restore the paper's static behavior with
    /// `.with_plumtree(PlumtreeConfig::default())`.
    pub plumtree: PlumtreeConfig,
    /// Wall-clock duration of one Plumtree timer unit.
    pub plumtree_timer_unit: Duration,
    /// Capacity of the node's decision-trace ring (see
    /// [`hyparview_obsv::TraceRing`]); `0` disables tracing.
    pub trace_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            protocol: Config::default(),
            shuffle_interval: Duration::from_millis(500),
            seed: None,
            transport: TransportConfig::default(),
            dedup_capacity: 8192,
            broadcast_mode: BroadcastMode::Flood,
            backend: TransportBackend::default(),
            plumtree: PlumtreeConfig::default()
                .with_optimization_threshold(Some(DEFAULT_OPTIMIZATION_THRESHOLD))
                .with_lazy_flush_interval(DEFAULT_LAZY_FLUSH_INTERVAL),
            plumtree_timer_unit: Duration::from_millis(20),
            trace_capacity: 0,
        }
    }
}

impl NetConfig {
    /// Selects the broadcast dissemination engine.
    pub fn with_broadcast_mode(mut self, mode: BroadcastMode) -> Self {
        self.broadcast_mode = mode;
        self
    }

    /// Selects the I/O backend.
    pub fn with_backend(mut self, backend: TransportBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the Plumtree tuning (timeouts, tree optimization threshold,
    /// lazy-flush interval). The cache capacity is still overridden by
    /// [`NetConfig::dedup_capacity`].
    pub fn with_plumtree(mut self, config: PlumtreeConfig) -> Self {
        self.plumtree = config;
        self
    }

    /// Enables structured decision tracing with a ring of `capacity`
    /// events (drained into the node handle's snapshot on each publish).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

pub(crate) enum Control {
    Join(SocketAddr),
    Broadcast { id: u128, payload: Bytes },
    Leave,
    Shutdown,
}

/// Capacity of the application delivery channel (both backends).
pub(crate) const DELIVERY_QUEUE: usize = 65_536;

/// A running HyParView node bound to a TCP address.
///
/// Dropping the handle shuts the node down.
///
/// # Examples
///
/// ```no_run
/// use hyparview_net::{NetConfig, Node};
///
/// # fn main() -> std::io::Result<()> {
/// let a = Node::spawn("127.0.0.1:0".parse().unwrap(), NetConfig::default())?;
/// let b = Node::spawn("127.0.0.1:0".parse().unwrap(), NetConfig::default())?;
/// b.join(a.addr());
/// b.broadcast(b"hello overlay".to_vec());
/// # Ok(())
/// # }
/// ```
pub struct Node {
    addr: SocketAddr,
    deliveries: Receiver<Delivery>,
    shared: Arc<Mutex<Shared>>,
    inner: Inner,
}

enum Inner {
    Threaded { control: Sender<Control>, thread: Option<std::thread::JoinHandle<()>> },
    Reactor(ReactorNode),
}

impl Node {
    /// Binds `addr` (port 0 for ephemeral) and starts the node on the
    /// backend selected by `config.backend`. Under the reactor backend
    /// this spawns a private single-node [`Cluster`] — to share one
    /// reactor across many nodes, use
    /// [`Cluster::spawn_node`](crate::Cluster::spawn_node) instead.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn spawn(addr: SocketAddr, config: NetConfig) -> std::io::Result<Node> {
        match config.backend {
            TransportBackend::Threaded => Node::spawn_threaded(addr, config),
            TransportBackend::Reactor => {
                let cluster = Cluster::new()?;
                cluster.spawn_node(addr, config)
            }
        }
    }

    pub(crate) fn from_reactor(
        addr: SocketAddr,
        deliveries: Receiver<Delivery>,
        shared: Arc<Mutex<Shared>>,
        handle: ReactorNode,
    ) -> Node {
        Node { addr, deliveries, shared, inner: Inner::Reactor(handle) }
    }

    fn spawn_threaded(addr: SocketAddr, config: NetConfig) -> std::io::Result<Node> {
        let (transport, transport_rx) = Transport::bind(addr, config.transport.clone())?;
        let local = transport.local_addr();

        let (control_tx, control_rx) = unbounded();
        let (delivery_tx, delivery_rx) = bounded(DELIVERY_QUEUE);
        let shared = Arc::new(Mutex::new(Shared::default()));
        let core = NodeCore::new(local, &config, Arc::clone(&shared), delivery_tx)?;

        let shuffle_interval = config.shuffle_interval;
        let broadcast_mode = config.broadcast_mode;
        let timer_unit = config.plumtree_timer_unit;
        let thread =
            std::thread::Builder::new().name(format!("hpv-node-{local}")).spawn(move || {
                event_loop(EventLoop {
                    transport,
                    transport_rx,
                    control_rx,
                    core,
                    timers: BinaryHeap::new(),
                    shuffle_interval,
                    broadcast_mode,
                    timer_unit,
                })
            })?;

        Ok(Node {
            addr: local,
            deliveries: delivery_rx,
            shared,
            inner: Inner::Threaded { control: control_tx, thread: Some(thread) },
        })
    }

    /// The node's identity: its bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Joins the overlay through `contact`.
    pub fn join(&self, contact: SocketAddr) {
        match &self.inner {
            Inner::Threaded { control, .. } => {
                let _ = control.send(Control::Join(contact));
            }
            Inner::Reactor(handle) => handle.join(contact),
        }
    }

    /// Broadcasts `payload` to the overlay, returning the broadcast id.
    pub fn broadcast(&self, payload: Vec<u8>) -> u128 {
        let id = rand::random();
        match &self.inner {
            Inner::Threaded { control, .. } => {
                let _ = control.send(Control::Broadcast { id, payload: Bytes::from(payload) });
            }
            Inner::Reactor(handle) => handle.broadcast(id, Bytes::from(payload)),
        }
        id
    }

    /// Receiver of gossip deliveries (the node's own broadcasts included,
    /// with `hops == 0`).
    pub fn deliveries(&self) -> &Receiver<Delivery> {
        &self.deliveries
    }

    /// Snapshot of the current active view.
    pub fn active_view(&self) -> Vec<SocketAddr> {
        self.shared.lock().active.clone()
    }

    /// Snapshot of the current passive view.
    pub fn passive_view(&self) -> Vec<SocketAddr> {
        self.shared.lock().passive.clone()
    }

    /// Snapshot of the Plumtree eager (tree) links. Empty in flood mode.
    pub fn eager_peers(&self) -> Vec<SocketAddr> {
        self.shared.lock().eager.clone()
    }

    /// Snapshot of the Plumtree lazy (announcement-only) links. Empty in
    /// flood mode.
    pub fn lazy_peers(&self) -> Vec<SocketAddr> {
        self.shared.lock().lazy.clone()
    }

    /// One *consistent* snapshot of `(active view, eager links, lazy
    /// links)` — taken under a single lock, so the three sets come from
    /// the same event-loop iteration (the separate accessors can observe
    /// different iterations).
    pub fn broadcast_links(&self) -> (Vec<SocketAddr>, Vec<SocketAddr>, Vec<SocketAddr>) {
        let shared = self.shared.lock();
        (shared.active.clone(), shared.eager.clone(), shared.lazy.clone())
    }

    /// Number of gossip messages delivered so far.
    pub fn delivery_count(&self) -> u64 {
        self.shared.lock().stats.deliveries
    }

    /// Snapshot of the node's runtime counters.
    pub fn stats(&self) -> NodeStats {
        self.shared.lock().stats
    }

    /// Snapshot of the node's full metric registry: the canonical
    /// `frames.*` / `broadcast.*` / `net.*` transport counters (shared
    /// with the simulator's event loop — see
    /// [`hyparview_obsv::names::SHARED_TRANSPORT_NAMES`]) plus the
    /// protocol-layer `hyparview.*` and, in Plumtree mode, `plumtree.*`
    /// counters.
    pub fn metrics(&self) -> Registry {
        self.shared.lock().metrics.clone()
    }

    /// Drains the decision-trace events published since the last call
    /// (always empty unless [`NetConfig::trace_capacity`] is nonzero).
    /// Timestamps are wall-clock microseconds since the node started.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &mut self.shared.lock().trace {
            Some(ring) => ring.drain().collect(),
            None => Vec::new(),
        }
    }

    /// Gracefully leaves the overlay (sends `DISCONNECT` to all active
    /// peers) without shutting down.
    pub fn leave(&self) {
        match &self.inner {
            Inner::Threaded { control, .. } => {
                let _ = control.send(Control::Leave);
            }
            Inner::Reactor(handle) => handle.leave(),
        }
    }

    /// Shuts the node down: closes its listener and every connection. Under
    /// the threaded backend this also joins the event-loop thread; under
    /// the reactor backend the shared reactor thread keeps running for its
    /// other nodes.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        match &mut self.inner {
            Inner::Threaded { control, thread } => {
                let _ = control.send(Control::Shutdown);
                if let Some(thread) = thread.take() {
                    let _ = thread.join();
                }
            }
            Inner::Reactor(handle) => handle.shutdown(),
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("addr", &self.addr)
            .field("active_view", &self.active_view())
            .finish()
    }
}

/// The [`NodeCtx`] of the threaded backend: frames go straight to the
/// blocking [`Transport`], timers onto the event loop's local heap.
struct ThreadedCtx<'a> {
    transport: &'a Transport,
    timers: &'a mut BinaryHeap<Reverse<(Instant, PlumtreeTimer)>>,
}

impl NodeCtx for ThreadedCtx<'_> {
    fn send_frame(&mut self, to: SocketAddr, frame: &crate::wire::Frame) {
        self.transport.send(to, frame);
    }

    fn disconnect(&mut self, peer: SocketAddr) {
        self.transport.disconnect(peer);
    }

    fn schedule(&mut self, timer: PlumtreeTimer, delay: Duration) {
        self.timers.push(Reverse((Instant::now() + delay, timer)));
    }
}

struct EventLoop {
    transport: Transport,
    transport_rx: Receiver<TransportEvent>,
    control_rx: Receiver<Control>,
    core: NodeCore,
    /// Min-heap of `(deadline, timer)` Plumtree deadlines.
    timers: BinaryHeap<Reverse<(Instant, PlumtreeTimer)>>,
    shuffle_interval: Duration,
    broadcast_mode: BroadcastMode,
    timer_unit: Duration,
}

fn event_loop(state: EventLoop) {
    let EventLoop {
        transport,
        transport_rx,
        control_rx,
        mut core,
        mut timers,
        shuffle_interval,
        broadcast_mode,
        timer_unit,
    } = state;
    let ticker = tick(shuffle_interval);
    // The timer wheel only needs resolution in Plumtree mode; in flood mode
    // the ticker idles at a long period.
    let timer_tick = tick(match broadcast_mode {
        BroadcastMode::Flood => Duration::from_secs(3600),
        BroadcastMode::Plumtree => timer_unit,
    });
    loop {
        let mut ctx = ThreadedCtx { transport: &transport, timers: &mut timers };
        crossbeam::channel::select! {
            recv(control_rx) -> msg => match msg {
                Ok(Control::Join(contact)) => core.join(contact, &mut ctx),
                Ok(Control::Broadcast { id, payload }) => core.broadcast(id, payload, &mut ctx),
                Ok(Control::Leave) => core.leave(&mut ctx),
                Ok(Control::Shutdown) | Err(_) => {
                    transport.shutdown();
                    return;
                }
            },
            recv(transport_rx) -> event => match event {
                Ok(TransportEvent::Frame { from, frame }) => core.on_frame(from, frame, &mut ctx),
                Ok(TransportEvent::PeerFailed { peer }) => core.on_peer_failed(peer, &mut ctx),
                Err(_) => return,
            },
            recv(ticker) -> _ => core.on_shuffle_tick(&mut ctx),
            recv(timer_tick) -> _ => {
                // Fire every Plumtree timer whose deadline passed.
                loop {
                    match ctx.timers.peek() {
                        Some(Reverse((deadline, _))) if *deadline <= Instant::now() => {
                            let Some(Reverse((_, timer))) = ctx.timers.pop() else { break };
                            core.on_plumtree_timer(timer, &mut ctx);
                        }
                        _ => break,
                    }
                }
            },
        }
        core.publish();
    }
}
