//! The node runtime: an event loop thread driving the sans-io
//! [`HyParView`] state machine over the TCP [`Transport`], plus the gossip
//! broadcast layer — the paper's eager flood with duplicate suppression, or
//! Plumtree's epidemic broadcast tree ([`BroadcastMode`]).
//!
//! This is the deployable form of the system the paper sketches for its
//! PlanetLab experiment (§6): real sockets, real connection failures, the
//! same protocol core as the simulator.

use crate::dedup::RecentSet;
use crate::transport::{Transport, TransportConfig, TransportEvent};
use crate::wire::Frame;
use bytes::Bytes;
use crossbeam::channel::{bounded, tick, unbounded, Receiver, Sender};
use hyparview_core::{Action, Actions, Config, HyParView, Message};
use hyparview_plumtree::{
    Announcement, BroadcastMode, PlumtreeConfig, PlumtreeMessage, PlumtreeOut, PlumtreeState,
    PlumtreeTimer,
};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Round-difference threshold of the runtime's default tree optimization
/// (Plumtree §3.8): an `IHave` announcing a path at least this many rounds
/// shorter than the eager delivery swaps the lazy link into the tree. The
/// value matches the `plumtree_adaptive`/`plumtree_latency` benches, where
/// it flattens healed trees without ever costing reliability.
pub const DEFAULT_OPTIMIZATION_THRESHOLD: u32 = 2;

/// Default lazy-announcement flush interval, in Plumtree timer units
/// (× [`NetConfig::plumtree_timer_unit`] ⇒ 40 ms at the default unit).
/// Folds concurrent broadcasts' announcements into `IHaveBatch` frames
/// while keeping the worst-case repair delay small.
pub const DEFAULT_LAZY_FLUSH_INTERVAL: u64 = 2;

/// Runtime configuration for a [`Node`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// HyParView protocol parameters.
    pub protocol: Config,
    /// Interval between shuffle ticks (the paper's membership cycle).
    pub shuffle_interval: Duration,
    /// RNG seed for the protocol instance (`None` = from entropy).
    pub seed: Option<u64>,
    /// Transport tuning.
    pub transport: TransportConfig,
    /// How many recent gossip ids to remember for duplicate suppression
    /// (flood mode) / how many payloads the Plumtree cache keeps.
    pub dedup_capacity: usize,
    /// How broadcast payloads are disseminated.
    pub broadcast_mode: BroadcastMode,
    /// Plumtree tuning (timeouts in abstract units, see
    /// [`NetConfig::plumtree_timer_unit`]). The cache capacity is
    /// overridden by `dedup_capacity` so both engines share one knob.
    ///
    /// Unlike the simulator (which keeps the paper-fidelity static tree by
    /// default), the runtime defaults to the *adaptive* §3.8 behavior:
    /// tree optimization at [`DEFAULT_OPTIMIZATION_THRESHOLD`] and lazy
    /// batching at [`DEFAULT_LAZY_FLUSH_INTERVAL`] timer units. Real
    /// sockets always have variable latency, and the `plumtree_latency`
    /// bench shows optimization strictly flattening healed trees at 100%
    /// reliability there. Restore the paper's static behavior with
    /// `.with_plumtree(PlumtreeConfig::default())`.
    pub plumtree: PlumtreeConfig,
    /// Wall-clock duration of one Plumtree timer unit.
    pub plumtree_timer_unit: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            protocol: Config::default(),
            shuffle_interval: Duration::from_millis(500),
            seed: None,
            transport: TransportConfig::default(),
            dedup_capacity: 8192,
            broadcast_mode: BroadcastMode::Flood,
            plumtree: PlumtreeConfig::default()
                .with_optimization_threshold(Some(DEFAULT_OPTIMIZATION_THRESHOLD))
                .with_lazy_flush_interval(DEFAULT_LAZY_FLUSH_INTERVAL),
            plumtree_timer_unit: Duration::from_millis(20),
        }
    }
}

impl NetConfig {
    /// Selects the broadcast dissemination engine.
    pub fn with_broadcast_mode(mut self, mode: BroadcastMode) -> Self {
        self.broadcast_mode = mode;
        self
    }

    /// Sets the Plumtree tuning (timeouts, tree optimization threshold,
    /// lazy-flush interval). The cache capacity is still overridden by
    /// [`NetConfig::dedup_capacity`].
    pub fn with_plumtree(mut self, config: PlumtreeConfig) -> Self {
        self.plumtree = config;
        self
    }
}

/// A gossip message delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Globally unique broadcast id.
    pub id: u128,
    /// Hops travelled before reaching this node (0 = local broadcast).
    pub hops: u32,
    /// Application payload.
    pub payload: Bytes,
}

enum Control {
    Join(SocketAddr),
    Broadcast { id: u128, payload: Bytes },
    Leave,
    Shutdown,
}

#[derive(Debug, Default, Clone)]
struct Shared {
    active: Vec<SocketAddr>,
    passive: Vec<SocketAddr>,
    eager: Vec<SocketAddr>,
    lazy: Vec<SocketAddr>,
    stats: NodeStats,
}

/// Runtime counters of a [`Node`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Broadcasts initiated by this node.
    pub broadcasts_sent: u64,
    /// Gossip messages delivered (first receipt), own broadcasts included.
    pub deliveries: u64,
    /// Redundant gossip receipts suppressed by the dedup set.
    pub duplicates: u64,
    /// Broadcast frames dropped because they belong to the *other*
    /// [`BroadcastMode`] — nonzero means a mode-misconfigured cluster.
    pub mode_mismatched: u64,
}

/// A running HyParView node bound to a TCP address.
///
/// Dropping the handle shuts the node down.
///
/// # Examples
///
/// ```no_run
/// use hyparview_net::{NetConfig, Node};
///
/// # fn main() -> std::io::Result<()> {
/// let a = Node::spawn("127.0.0.1:0".parse().unwrap(), NetConfig::default())?;
/// let b = Node::spawn("127.0.0.1:0".parse().unwrap(), NetConfig::default())?;
/// b.join(a.addr());
/// b.broadcast(b"hello overlay".to_vec());
/// # Ok(())
/// # }
/// ```
pub struct Node {
    addr: SocketAddr,
    control: Sender<Control>,
    deliveries: Receiver<Delivery>,
    shared: Arc<Mutex<Shared>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Node {
    /// Binds `addr` (port 0 for ephemeral) and starts the event loop.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn spawn(addr: SocketAddr, config: NetConfig) -> std::io::Result<Node> {
        let (transport, transport_rx) = Transport::bind(addr, config.transport.clone())?;
        let local = transport.local_addr();
        let seed = config.seed.unwrap_or_else(rand::random);
        let protocol = HyParView::new(local, config.protocol.clone(), seed)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;

        let (control_tx, control_rx) = unbounded();
        let (delivery_tx, delivery_rx) = bounded(65_536);
        let shared = Arc::new(Mutex::new(Shared::default()));

        let loop_shared = Arc::clone(&shared);
        let shuffle_interval = config.shuffle_interval;
        let broadcaster = match config.broadcast_mode {
            BroadcastMode::Flood => {
                Broadcaster::Flood { seen: RecentSet::new(config.dedup_capacity) }
            }
            BroadcastMode::Plumtree => Broadcaster::Plumtree {
                state: PlumtreeState::new(
                    local,
                    config.plumtree.clone().with_cache_capacity(config.dedup_capacity),
                ),
                timers: BinaryHeap::new(),
                unit: config.plumtree_timer_unit,
            },
        };
        let thread =
            std::thread::Builder::new().name(format!("hpv-node-{local}")).spawn(move || {
                event_loop(EventLoop {
                    transport,
                    transport_rx,
                    control_rx,
                    delivery_tx,
                    protocol,
                    broadcaster,
                    shared: loop_shared,
                    shuffle_interval,
                })
            })?;

        Ok(Node {
            addr: local,
            control: control_tx,
            deliveries: delivery_rx,
            shared,
            thread: Some(thread),
        })
    }

    /// The node's identity: its bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Joins the overlay through `contact`.
    pub fn join(&self, contact: SocketAddr) {
        let _ = self.control.send(Control::Join(contact));
    }

    /// Broadcasts `payload` to the overlay, returning the broadcast id.
    pub fn broadcast(&self, payload: Vec<u8>) -> u128 {
        let id = rand::random();
        let _ = self.control.send(Control::Broadcast { id, payload: Bytes::from(payload) });
        id
    }

    /// Receiver of gossip deliveries (the node's own broadcasts included,
    /// with `hops == 0`).
    pub fn deliveries(&self) -> &Receiver<Delivery> {
        &self.deliveries
    }

    /// Snapshot of the current active view.
    pub fn active_view(&self) -> Vec<SocketAddr> {
        self.shared.lock().active.clone()
    }

    /// Snapshot of the current passive view.
    pub fn passive_view(&self) -> Vec<SocketAddr> {
        self.shared.lock().passive.clone()
    }

    /// Snapshot of the Plumtree eager (tree) links. Empty in flood mode.
    pub fn eager_peers(&self) -> Vec<SocketAddr> {
        self.shared.lock().eager.clone()
    }

    /// Snapshot of the Plumtree lazy (announcement-only) links. Empty in
    /// flood mode.
    pub fn lazy_peers(&self) -> Vec<SocketAddr> {
        self.shared.lock().lazy.clone()
    }

    /// One *consistent* snapshot of `(active view, eager links, lazy
    /// links)` — taken under a single lock, so the three sets come from
    /// the same event-loop iteration (the separate accessors can observe
    /// different iterations).
    pub fn broadcast_links(&self) -> (Vec<SocketAddr>, Vec<SocketAddr>, Vec<SocketAddr>) {
        let shared = self.shared.lock();
        (shared.active.clone(), shared.eager.clone(), shared.lazy.clone())
    }

    /// Number of gossip messages delivered so far.
    pub fn delivery_count(&self) -> u64 {
        self.shared.lock().stats.deliveries
    }

    /// Snapshot of the node's runtime counters.
    pub fn stats(&self) -> NodeStats {
        self.shared.lock().stats
    }

    /// Gracefully leaves the overlay (sends `DISCONNECT` to all active
    /// peers) without shutting down.
    pub fn leave(&self) {
        let _ = self.control.send(Control::Leave);
    }

    /// Shuts the node down and joins the event loop thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.control.send(Control::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("addr", &self.addr)
            .field("active_view", &self.active_view())
            .finish()
    }
}

/// The broadcast engine the event loop runs.
#[allow(clippy::large_enum_variant)] // exactly one per node; size is irrelevant
enum Broadcaster {
    /// The paper's eager flood (§4.1.ii) with bounded duplicate suppression.
    Flood { seen: RecentSet<u128> },
    /// Plumtree: eager/lazy dissemination with a wall-clock timer wheel for
    /// the missing-message and lazy-flush timers.
    Plumtree {
        state: PlumtreeState<SocketAddr, Bytes>,
        /// Min-heap of `(deadline, timer)` deadlines.
        timers: BinaryHeap<Reverse<(Instant, PlumtreeTimer)>>,
        /// Wall-clock duration of one abstract timer unit.
        unit: Duration,
    },
}

struct EventLoop {
    transport: Transport,
    transport_rx: Receiver<TransportEvent>,
    control_rx: Receiver<Control>,
    delivery_tx: Sender<Delivery>,
    protocol: HyParView<SocketAddr>,
    broadcaster: Broadcaster,
    shared: Arc<Mutex<Shared>>,
    shuffle_interval: Duration,
}

fn event_loop(mut state: EventLoop) {
    let ticker = tick(state.shuffle_interval);
    // The timer wheel only needs resolution in Plumtree mode; in flood mode
    // the ticker idles at a long period.
    let timer_tick = tick(match &state.broadcaster {
        Broadcaster::Flood { .. } => Duration::from_secs(3600),
        Broadcaster::Plumtree { unit, .. } => *unit,
    });
    let mut actions = Actions::new();
    loop {
        crossbeam::channel::select! {
            recv(state.control_rx) -> msg => match msg {
                Ok(Control::Join(contact)) => {
                    state.protocol.join(contact, &mut actions);
                }
                Ok(Control::Broadcast { id, payload }) => {
                    state.broadcast(id, payload);
                }
                Ok(Control::Leave) => {
                    state.protocol.leave(&mut actions);
                }
                Ok(Control::Shutdown) | Err(_) => {
                    state.transport.shutdown();
                    return;
                }
            },
            recv(state.transport_rx) -> event => match event {
                Ok(TransportEvent::Frame { from, frame }) => state.on_frame(from, frame, &mut actions),
                Ok(TransportEvent::PeerFailed { peer }) => {
                    state.protocol.on_peer_failed(peer, &mut actions);
                }
                Err(_) => return,
            },
            recv(ticker) -> _ => {
                state.protocol.shuffle_tick(&mut actions);
            },
            recv(timer_tick) -> _ => {
                state.fire_due_timers();
            },
        }
        state.execute(&mut actions);
        state.publish();
    }
}

/// Plumtree message → wire frame.
fn plumtree_frame(message: PlumtreeMessage<Bytes>) -> Frame {
    match message {
        PlumtreeMessage::Gossip { id, round, payload } => {
            Frame::PlumtreeGossip { id, round, payload }
        }
        PlumtreeMessage::IHave { id, round } => Frame::PlumtreeIHave { id, round },
        PlumtreeMessage::IHaveBatch { anns } => {
            Frame::PlumtreeIHaveBatch { anns: anns.iter().map(|a| (a.id, a.round)).collect() }
        }
        PlumtreeMessage::Graft { id, round } => Frame::PlumtreeGraft { id, round },
        PlumtreeMessage::Prune => Frame::PlumtreePrune,
    }
}

impl EventLoop {
    fn on_frame(&mut self, from: SocketAddr, frame: Frame, actions: &mut Actions<SocketAddr>) {
        match frame {
            Frame::Hello { .. } => {} // handled by the transport
            Frame::Membership(message) => {
                self.protocol.handle_message(from, message, actions);
            }
            Frame::Gossip { id, hops, payload } => {
                let Broadcaster::Flood { seen } = &mut self.broadcaster else {
                    // Flood traffic in Plumtree mode: a misconfigured peer.
                    self.shared.lock().stats.mode_mismatched += 1;
                    return;
                };
                if !seen.insert(id) {
                    self.shared.lock().stats.duplicates += 1;
                    return;
                }
                self.shared.lock().stats.deliveries += 1;
                let _ = self.delivery_tx.try_send(Delivery { id, hops, payload: payload.clone() });
                // Eager flood: forward to the whole active view except the
                // sender (§4.1.ii).
                let frame = Frame::Gossip { id, hops: hops + 1, payload };
                for peer in self.protocol.broadcast_targets(Some(from)) {
                    self.transport.send(peer, &frame);
                }
            }
            Frame::PlumtreeGossip { id, round, payload } => {
                self.on_plumtree(from, PlumtreeMessage::Gossip { id, round, payload });
            }
            Frame::PlumtreeIHave { id, round } => {
                self.on_plumtree(from, PlumtreeMessage::IHave { id, round });
            }
            Frame::PlumtreeIHaveBatch { anns } => {
                let anns = anns.iter().map(|&(id, round)| Announcement { id, round }).collect();
                self.on_plumtree(from, PlumtreeMessage::IHaveBatch { anns });
            }
            Frame::PlumtreeGraft { id, round } => {
                self.on_plumtree(from, PlumtreeMessage::Graft { id, round });
            }
            Frame::PlumtreePrune => {
                self.on_plumtree(from, PlumtreeMessage::Prune);
            }
        }
    }

    fn on_plumtree(&mut self, from: SocketAddr, message: PlumtreeMessage<Bytes>) {
        let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster else {
            // Plumtree traffic in flood mode: a misconfigured peer.
            self.shared.lock().stats.mode_mismatched += 1;
            return;
        };
        if let PlumtreeMessage::Gossip { id, .. } = &message {
            if state.has_seen(*id) {
                self.shared.lock().stats.duplicates += 1;
            }
        }
        let mut out = PlumtreeOut::new();
        state.handle_message(from, message, &mut out);
        self.apply_plumtree(out);
    }

    fn broadcast(&mut self, id: u128, payload: Bytes) {
        match &mut self.broadcaster {
            Broadcaster::Flood { seen } => {
                if !seen.insert(id) {
                    return; // id collision with a recent broadcast: drop
                }
                {
                    let mut shared = self.shared.lock();
                    shared.stats.broadcasts_sent += 1;
                    shared.stats.deliveries += 1;
                }
                let _ =
                    self.delivery_tx.try_send(Delivery { id, hops: 0, payload: payload.clone() });
                let frame = Frame::Gossip { id, hops: 1, payload };
                for peer in self.protocol.broadcast_targets(None) {
                    self.transport.send(peer, &frame);
                }
            }
            Broadcaster::Plumtree { state, .. } => {
                let mut out = PlumtreeOut::new();
                state.broadcast(id, payload, &mut out);
                if !out.deliveries.is_empty() {
                    self.shared.lock().stats.broadcasts_sent += 1;
                }
                self.apply_plumtree(out);
            }
        }
    }

    /// Ships the effects of one Plumtree step: frames out, deliveries up,
    /// timer requests onto the wheel.
    fn apply_plumtree(&mut self, mut out: PlumtreeOut<SocketAddr, Bytes>) {
        for (to, message) in out.outbox.drain() {
            self.transport.send(to, &plumtree_frame(message));
        }
        for delivery in out.deliveries.drain(..) {
            self.shared.lock().stats.deliveries += 1;
            let _ = self.delivery_tx.try_send(Delivery {
                id: delivery.id,
                hops: delivery.round,
                payload: delivery.payload,
            });
        }
        if out.timers.is_empty() {
            return;
        }
        let Broadcaster::Plumtree { timers, unit, .. } = &mut self.broadcaster else {
            return;
        };
        let now = Instant::now();
        for request in out.timers.drain(..) {
            let delay = unit.saturating_mul(request.delay.min(u32::MAX as u64) as u32);
            timers.push(Reverse((now + delay, request.timer)));
        }
    }

    /// Fires every Plumtree timer whose deadline passed.
    fn fire_due_timers(&mut self) {
        loop {
            let timer = {
                let Broadcaster::Plumtree { timers, .. } = &mut self.broadcaster else {
                    return;
                };
                match timers.peek() {
                    Some(Reverse((deadline, _))) if *deadline <= Instant::now() => {
                        let Some(Reverse((_, timer))) = timers.pop() else { return };
                        timer
                    }
                    _ => return,
                }
            };
            let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster else { return };
            let mut out = PlumtreeOut::new();
            state.on_timer(timer, &mut out);
            self.apply_plumtree(out);
        }
    }

    fn execute(&mut self, actions: &mut Actions<SocketAddr>) {
        for action in actions.drain() {
            match action {
                Action::Send { to, message } => {
                    let graceful_close = matches!(message, Message::Disconnect);
                    self.transport.send(to, &Frame::Membership(message));
                    if graceful_close {
                        // The DISCONNECT is queued; the writer flushes it
                        // before the channel closes.
                        self.transport.disconnect(to);
                    }
                }
                Action::NeighborUp { peer } => {
                    // New active-view links enter the Plumtree eager set;
                    // connections themselves are opened lazily by sends.
                    if let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster {
                        state.on_neighbor_up(peer);
                    }
                }
                Action::NeighborDown { peer } => {
                    // The peer keeps its connection until DISCONNECT or
                    // failure, but it leaves the broadcast tree immediately.
                    if let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster {
                        state.on_neighbor_down(peer);
                    }
                }
            }
        }
    }

    fn publish(&self) {
        let mut shared = self.shared.lock();
        shared.active = self.protocol.active_view().to_vec();
        shared.passive = self.protocol.passive_view().to_vec();
        if let Broadcaster::Plumtree { state, .. } = &self.broadcaster {
            shared.eager = state.eager_peers();
            shared.lazy = state.lazy_peers();
        }
    }
}
