//! Bounded duplicate-suppression set for gossip ids.
//!
//! The simulator can afford an unbounded seen-set; a long-running node
//! cannot. [`RecentSet`] keeps the most recent `capacity` ids in FIFO
//! order, which is correct for gossip dedup because duplicates arrive
//! within a few network round-trips of the original.

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// A FIFO-bounded set of recently seen identifiers.
///
/// # Examples
///
/// ```
/// use hyparview_net::dedup::RecentSet;
///
/// let mut seen: RecentSet<u64> = RecentSet::new(2);
/// assert!(seen.insert(1));
/// assert!(!seen.insert(1), "duplicate detected");
/// seen.insert(2);
/// seen.insert(3); // evicts 1
/// assert!(seen.insert(1), "evicted ids are forgotten");
/// ```
#[derive(Debug, Clone)]
pub struct RecentSet<T> {
    set: HashSet<T>,
    order: VecDeque<T>,
    capacity: usize,
}

impl<T: Copy + Eq + Hash> RecentSet<T> {
    /// Creates a set remembering at most `capacity` identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RecentSet {
            set: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Inserts `id`, returning `true` if it was not already present.
    /// Evicts the oldest id when full.
    pub fn insert(&mut self, id: T) -> bool {
        if self.set.contains(&id) {
            return false;
        }
        if self.order.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.set.remove(&oldest);
            }
        }
        self.order.push_back(id);
        self.set.insert(id);
        true
    }

    /// Whether `id` is currently remembered.
    pub fn contains(&self, id: &T) -> bool {
        self.set.contains(id)
    }

    /// Number of remembered ids.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s: RecentSet<u32> = RecentSet::new(4);
        assert!(s.insert(1));
        assert!(s.contains(&1));
        assert!(!s.insert(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eviction_is_fifo() {
        let mut s: RecentSet<u32> = RecentSet::new(3);
        for i in 0..3 {
            s.insert(i);
        }
        s.insert(3); // evicts 0
        assert!(!s.contains(&0));
        assert!(s.contains(&1));
        assert!(s.contains(&3));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn duplicate_insert_does_not_evict() {
        let mut s: RecentSet<u32> = RecentSet::new(2);
        s.insert(1);
        s.insert(2);
        s.insert(2);
        assert!(s.contains(&1), "duplicate must not trigger eviction");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: RecentSet<u32> = RecentSet::new(0);
    }

    #[test]
    fn is_empty_reports() {
        let mut s: RecentSet<u32> = RecentSet::new(1);
        assert!(s.is_empty());
        s.insert(5);
        assert!(!s.is_empty());
    }
}
