//! Bounded duplicate-suppression set for gossip ids.
//!
//! [`RecentSet`] now lives in `hyparview-core` (it is shared with the
//! gossip bookkeeping and the Plumtree message cache); this module re-exports
//! it under its historical path.
//!
//! ```
//! use hyparview_net::dedup::RecentSet;
//!
//! let mut seen: RecentSet<u64> = RecentSet::new(2);
//! assert!(seen.insert(1));
//! assert!(!seen.insert(1), "duplicate detected");
//! ```

pub use hyparview_core::collections::RecentSet;
