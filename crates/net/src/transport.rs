//! Thread-per-connection TCP transport.
//!
//! Connection model: a node writes to peer `P` over a connection it opened
//! itself (first frame: [`Frame::Hello`] announcing the canonical listen
//! address); it reads from peers over the connections *they* opened. A dead
//! peer is detected two ways, both reported as
//! [`TransportEvent::PeerFailed`]:
//!
//! * a write/connect on the outbound connection fails (send-time detection,
//!   §4.1.iii "all members of the active view are tested at each gossip
//!   step"), or
//! * the inbound connection reaches EOF / errors (connection-break
//!   detection).
//!
//! Slow peers are expelled NeEM-style (§5.5): each outbound connection has a
//! bounded queue and a peer whose queue overflows is treated as failed,
//! preventing TCP back-pressure from freezing the whole overlay.

use crate::wire::{encode, Frame, FrameReader};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use hyparview_core::Message;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Events surfaced to the protocol runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent {
    /// A frame arrived from `from` (canonical identity from its `Hello`).
    Frame {
        /// Sender's canonical (listen) address.
        from: SocketAddr,
        /// The decoded frame.
        frame: Frame,
    },
    /// The connection to/from `peer` failed: crashed, unreachable, corrupt
    /// stream, or expelled for being too slow.
    PeerFailed {
        /// The affected peer.
        peer: SocketAddr,
    },
}

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Connect timeout for outbound connections.
    pub connect_timeout: Duration,
    /// Outbound queue capacity per peer; overflowing marks the peer failed
    /// (slow-node expulsion).
    pub writer_queue: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig { connect_timeout: Duration::from_secs(2), writer_queue: 1024 }
    }
}

type Writers = Arc<Mutex<HashMap<SocketAddr, Sender<bytes::Bytes>>>>;

/// A bound TCP endpoint with background accept/reader/writer threads.
pub struct Transport {
    local: SocketAddr,
    writers: Writers,
    events_tx: Sender<TransportEvent>,
    config: TransportConfig,
    shutdown: Arc<AtomicBool>,
}

impl Transport {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread. Events are delivered on the returned receiver.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn bind(
        addr: SocketAddr,
        config: TransportConfig,
    ) -> std::io::Result<(Transport, Receiver<TransportEvent>)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (events_tx, events_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));

        let writers: Writers = Arc::new(Mutex::new(HashMap::new()));
        let accept_tx = events_tx.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_writers = Arc::clone(&writers);
        std::thread::Builder::new()
            .name(format!("hpv-accept-{local}"))
            .spawn(move || accept_loop(listener, accept_tx, accept_shutdown, accept_writers))
            .expect("failed to spawn accept thread");

        Ok((Transport { local, writers, events_tx, config, shutdown }, events_rx))
    }

    /// The actual bound address (the node's identity).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Queues `frame` for delivery to `to`, lazily opening a connection.
    ///
    /// Failures are asynchronous: they surface as
    /// [`TransportEvent::PeerFailed`] rather than an error here, matching
    /// the sans-io protocol's `on_peer_failed` input.
    pub fn send(&self, to: SocketAddr, frame: &Frame) {
        let bytes = encode(frame);
        let mut writers = self.writers.lock();
        let sender = writers.entry(to).or_insert_with(|| self.spawn_writer(to));
        match sender.try_send(bytes) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // NeEM-style slow-node expulsion: the peer is not consuming;
                // drop the connection and report it failed.
                writers.remove(&to);
                let _ = self.events_tx.send(TransportEvent::PeerFailed { peer: to });
            }
            Err(TrySendError::Disconnected(_)) => {
                // Writer already died; it reported the failure itself.
                writers.remove(&to);
            }
        }
    }

    /// Drops the outbound connection to `peer` (if any) without reporting a
    /// failure. Used after a graceful `DISCONNECT`.
    pub fn disconnect(&self, peer: SocketAddr) {
        self.writers.lock().remove(&peer);
    }

    /// Number of open outbound connections (diagnostics).
    pub fn open_connections(&self) -> usize {
        self.writers.lock().len()
    }

    /// Stops the accept loop and drops all outbound connections.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.writers.lock().clear();
    }

    fn spawn_writer(&self, to: SocketAddr) -> Sender<bytes::Bytes> {
        let (tx, rx) = bounded::<bytes::Bytes>(self.config.writer_queue);
        let events = self.events_tx.clone();
        let local = self.local;
        let timeout = self.config.connect_timeout;
        let writers = Arc::clone(&self.writers);
        std::thread::Builder::new()
            .name(format!("hpv-writer-{to}"))
            .spawn(move || {
                if writer_loop(local, to, rx, timeout).is_err() {
                    writers.lock().remove(&to);
                    let _ = events.send(TransportEvent::PeerFailed { peer: to });
                }
            })
            .expect("failed to spawn writer thread");
        tx
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transport")
            .field("local", &self.local)
            .field("open_connections", &self.open_connections())
            .finish()
    }
}

fn writer_loop(
    local: SocketAddr,
    to: SocketAddr,
    rx: Receiver<bytes::Bytes>,
    timeout: Duration,
) -> std::io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&to, timeout)?;
    stream.set_nodelay(true)?;
    stream.write_all(&encode(&Frame::Hello { sender: local }))?;
    while let Ok(bytes) = rx.recv() {
        stream.write_all(&bytes)?;
    }
    // Channel closed: graceful disconnect.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(())
}

/// Shortest / longest accept-poll sleep. The nonblocking listener is polled
/// with exponential backoff rather than a fixed 10 ms spin: an idle node
/// sleeps up to [`ACCEPT_BACKOFF_MAX`] between checks, while a successful
/// accept resets the backoff so connection bursts are drained promptly.
/// (The reactor backend has no such loop at all — its listener wakes on
/// epoll readiness.)
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(200);

fn accept_loop(
    listener: TcpListener,
    events: Sender<TransportEvent>,
    shutdown: Arc<AtomicBool>,
    writers: Writers,
) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                let events = events.clone();
                let shutdown = Arc::clone(&shutdown);
                let writers = Arc::clone(&writers);
                std::thread::Builder::new()
                    .name("hpv-reader".to_owned())
                    .spawn(move || reader_loop(stream, events, shutdown, writers))
                    .expect("failed to spawn reader thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    events: Sender<TransportEvent>,
    shutdown: Arc<AtomicBool>,
    writers: Writers,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = FrameReader::new();
    let mut identity: Option<SocketAddr> = None;
    let mut goodbye = false;
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF: peer closed or crashed
            Ok(n) => {
                reader.extend(&buf[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(Frame::Hello { sender })) => identity = Some(sender),
                        Ok(Some(frame)) => {
                            let Some(from) = identity else {
                                // Protocol violation: data before Hello.
                                report_failure(&events, identity, &writers);
                                return;
                            };
                            // A DISCONNECT announces a graceful close: the
                            // EOF that follows is cleanup, not a crash.
                            if matches!(frame, Frame::Membership(Message::Disconnect)) {
                                goodbye = true;
                            }
                            if events.send(TransportEvent::Frame { from, frame }).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            report_failure(&events, identity, &writers);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    if goodbye {
        // Evict the stale outbound writer silently — the peer is not
        // failed, it closed on purpose.
        if let Some(peer) = identity {
            writers.lock().remove(&peer);
        }
        return;
    }
    report_failure(&events, identity, &writers);
}

/// Reports an inbound-side failure and evicts the peer's *outbound* writer
/// entry in the same step. Without the eviction, a crashed peer's writer
/// (queue sender + connection) would linger in the `writers` map until the
/// next send to it happened to fail — a slow leak under churn.
fn report_failure(
    events: &Sender<TransportEvent>,
    identity: Option<SocketAddr>,
    writers: &Writers,
) {
    if let Some(peer) = identity {
        writers.lock().remove(&peer);
        let _ = events.send(TransportEvent::PeerFailed { peer });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use hyparview_core::Message;

    fn bind() -> (Transport, Receiver<TransportEvent>) {
        Transport::bind("127.0.0.1:0".parse().unwrap(), TransportConfig::default()).unwrap()
    }

    fn recv_frame(rx: &Receiver<TransportEvent>) -> (SocketAddr, Frame) {
        loop {
            match rx.recv_timeout(Duration::from_secs(5)).expect("event") {
                TransportEvent::Frame { from, frame } => return (from, frame),
                TransportEvent::PeerFailed { .. } => continue,
            }
        }
    }

    #[test]
    fn frames_travel_between_transports() {
        let (a, _a_rx) = bind();
        let (b, b_rx) = bind();
        a.send(b.local_addr(), &Frame::Membership(Message::Join));
        let (from, frame) = recv_frame(&b_rx);
        assert_eq!(from, a.local_addr(), "identity comes from Hello, not the ephemeral port");
        assert_eq!(frame, Frame::Membership(Message::Join));
    }

    #[test]
    fn many_frames_preserve_order() {
        let (a, _a_rx) = bind();
        let (b, b_rx) = bind();
        for i in 0..100u128 {
            a.send(
                b.local_addr(),
                &Frame::Gossip { id: i, hops: 0, payload: Bytes::from_static(b"p") },
            );
        }
        for i in 0..100u128 {
            let (_, frame) = recv_frame(&b_rx);
            match frame {
                Frame::Gossip { id, .. } => assert_eq!(id, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn connect_failure_reports_peer_failed() {
        let (a, a_rx) = bind();
        // Nothing listens on this port (we bind+drop to find a free one).
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        a.send(dead, &Frame::Membership(Message::Join));
        let event = a_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(event, TransportEvent::PeerFailed { peer: dead });
    }

    #[test]
    fn peer_shutdown_reports_failure_to_reader() {
        let (a, _a_rx) = bind();
        let (b, b_rx) = bind();
        a.send(b.local_addr(), &Frame::Membership(Message::Join));
        let _ = recv_frame(&b_rx);
        // a drops all connections: b's reader sees EOF.
        a.shutdown();
        let event = b_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(event, TransportEvent::PeerFailed { peer: a.local_addr() });
    }

    #[test]
    fn disconnect_is_silent() {
        let (a, a_rx) = bind();
        let (b, b_rx) = bind();
        a.send(b.local_addr(), &Frame::Membership(Message::Join));
        let _ = recv_frame(&b_rx);
        assert_eq!(a.open_connections(), 1);
        a.disconnect(b.local_addr());
        assert_eq!(a.open_connections(), 0);
        // No failure event on a's side.
        assert!(a_rx.recv_timeout(Duration::from_millis(300)).is_err());
    }

    #[test]
    fn local_addr_is_concrete() {
        let (a, _rx) = bind();
        assert_ne!(a.local_addr().port(), 0);
    }
}
