//! Standalone HyParView node: bind an address, optionally join a contact,
//! broadcast lines from stdin and print every delivery.
//!
//! ```text
//! # terminal 1 — bootstrap node
//! cargo run --release -p hyparview-net --bin hyparview_node -- --bind 127.0.0.1:9000
//! # terminal 2 — join and chat
//! cargo run --release -p hyparview-net --bin hyparview_node -- \
//!     --bind 127.0.0.1:9001 --join 127.0.0.1:9000
//! ```

use hyparview_net::{BroadcastMode, NetConfig, Node, TransportBackend};
use hyparview_obsv::log::Level;
use hyparview_obsv::{obsv_error, obsv_info};
use std::io::BufRead;
use std::net::SocketAddr;
use std::time::Duration;

struct Args {
    bind: SocketAddr,
    join: Option<SocketAddr>,
    shuffle_ms: u64,
    active: usize,
    passive: usize,
    plumtree: bool,
    backend: TransportBackend,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: "127.0.0.1:0".parse().unwrap(),
        join: None,
        shuffle_ms: 1000,
        active: 5,
        passive: 30,
        plumtree: false,
        backend: TransportBackend::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--bind" => args.bind = value("--bind")?.parse().map_err(|e| format!("--bind: {e}"))?,
            "--join" => {
                args.join = Some(value("--join")?.parse().map_err(|e| format!("--join: {e}"))?)
            }
            "--shuffle-ms" => {
                args.shuffle_ms =
                    value("--shuffle-ms")?.parse().map_err(|e| format!("--shuffle-ms: {e}"))?
            }
            "--active" => {
                args.active = value("--active")?.parse().map_err(|e| format!("--active: {e}"))?
            }
            "--passive" => {
                args.passive = value("--passive")?.parse().map_err(|e| format!("--passive: {e}"))?
            }
            "--plumtree" => args.plumtree = true,
            "--backend" => {
                args.backend = match value("--backend")?.as_str() {
                    "reactor" => TransportBackend::Reactor,
                    "threaded" => TransportBackend::Threaded,
                    other => {
                        return Err(format!("--backend: expected reactor|threaded, got {other}"))
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: hyparview_node [--bind ADDR] [--join ADDR] \
                     [--shuffle-ms N] [--active N] [--passive N] [--plumtree] \
                     [--backend reactor|threaded]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> std::io::Result<()> {
    // `HPV_LOG=debug|info|warn|error|off` filters; interactive default Info.
    hyparview_obsv::log::init_from_env(Level::Info);
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            obsv_error!("hyparview_node", "{e}");
            std::process::exit(2);
        }
    };

    let config = NetConfig {
        protocol: hyparview_core::Config::default()
            .with_active_capacity(args.active)
            .with_passive_capacity(args.passive),
        shuffle_interval: Duration::from_millis(args.shuffle_ms),
        broadcast_mode: if args.plumtree { BroadcastMode::Plumtree } else { BroadcastMode::Flood },
        backend: args.backend,
        ..NetConfig::default()
    };
    let mode = config.broadcast_mode;
    let backend = config.backend;
    let node = Node::spawn(args.bind, config)?;
    obsv_info!(
        "hyparview_node",
        "listening on {} ({mode} broadcast, {backend} backend)",
        node.addr()
    );
    if let Some(contact) = args.join {
        obsv_info!("hyparview_node", "joining through {contact}");
        node.join(contact);
    }

    // Print deliveries and periodic view snapshots from a helper thread.
    let deliveries = node.deliveries().clone();
    std::thread::spawn(move || {
        for delivery in deliveries.iter() {
            match std::str::from_utf8(&delivery.payload) {
                Ok(text) => println!("[{} hops] {text}", delivery.hops),
                Err(_) => println!("[{} hops] {} bytes", delivery.hops, delivery.payload.len()),
            }
        }
    });

    println!("type a message and press enter to broadcast; 'view' prints the views; 'quit' exits");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        match line.trim() {
            "" => {}
            "quit" | "exit" => break,
            "view" => {
                println!("active:  {:?}", node.active_view());
                println!("passive: {:?}", node.passive_view());
                if args.plumtree {
                    println!("eager:   {:?}", node.eager_peers());
                    println!("lazy:    {:?}", node.lazy_peers());
                }
            }
            text => {
                node.broadcast(text.as_bytes().to_vec());
            }
        }
    }
    node.leave();
    std::thread::sleep(Duration::from_millis(200));
    node.shutdown();
    Ok(())
}
