//! Wire format: length-prefixed binary frames over TCP.
//!
//! Every frame is `u32` big-endian payload length followed by the payload;
//! the first payload byte is a tag. Node identifiers are socket addresses
//! (the `(ip, port)` tuples of §2.1) encoded as family tag + octets + port.
//!
//! The codec is hand-rolled on [`bytes`] — no serialization framework — so
//! the format is stable, inspectable and fuzzable.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hyparview_core::{Message, Priority};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

/// Maximum accepted payload size (a shuffle with every view entry fits in
/// well under 4 KiB; anything larger is a corrupt or malicious frame).
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Errors produced while decoding frames.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Frame declared a length above [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Declared length.
        len: usize,
    },
    /// Payload ended before the structure was complete.
    Truncated,
    /// Unknown message tag.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// Unknown address family byte.
    BadAddressFamily {
        /// The offending family byte.
        family: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => write!(f, "frame length {len} exceeds limit"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::BadAddressFamily { family } => {
                write!(f, "unknown address family {family}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame: either a HyParView membership message, a gossip
/// broadcast, or the connection-opening `Hello`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// The first frame on every outbound connection: announces the sender's
    /// canonical listen address (inbound `peer_addr` has an ephemeral port
    /// and cannot identify the node).
    Hello {
        /// The sender's listen address — its protocol identity.
        sender: SocketAddr,
    },
    /// A HyParView protocol message.
    Membership(Message<SocketAddr>),
    /// A gossip broadcast payload.
    Gossip {
        /// Globally unique broadcast id.
        id: u128,
        /// Hop count (for diagnostics).
        hops: u32,
        /// Application payload.
        payload: Bytes,
    },
    /// Plumtree eager push: the payload travelling a tree link.
    PlumtreeGossip {
        /// Globally unique broadcast id.
        id: u128,
        /// Hop count at the receiver.
        round: u32,
        /// Application payload.
        payload: Bytes,
    },
    /// Plumtree lazy announcement on a non-tree link.
    PlumtreeIHave {
        /// Announced broadcast id.
        id: u128,
        /// Hop count the payload would have at the receiver.
        round: u32,
    },
    /// Batched Plumtree lazy announcements: every `(id, round)` queued for
    /// this peer since the last flush, in one frame.
    PlumtreeIHaveBatch {
        /// Announcements, oldest first. Never empty on the wire.
        anns: Vec<(u128, u32)>,
    },
    /// Plumtree tree repair or optimization: reinstate the link as eager
    /// and — when `id` is present — (re)send that payload. An absent id is
    /// the payload-free promotion of Plumtree's tree optimization.
    PlumtreeGraft {
        /// Broadcast id being pulled, or `None` for a promotion-only graft.
        id: Option<u128>,
        /// Round echoed from the triggering announcement.
        round: u32,
    },
    /// Plumtree tree maintenance: demote the link to lazy.
    PlumtreePrune,
}

const TAG_HELLO: u8 = 0;
const TAG_JOIN: u8 = 1;
const TAG_FORWARD_JOIN: u8 = 2;
const TAG_FORWARD_JOIN_REPLY: u8 = 3;
const TAG_NEIGHBOR: u8 = 4;
const TAG_NEIGHBOR_REPLY: u8 = 5;
const TAG_DISCONNECT: u8 = 6;
const TAG_SHUFFLE: u8 = 7;
const TAG_SHUFFLE_REPLY: u8 = 8;
const TAG_GOSSIP: u8 = 9;
const TAG_PLUMTREE_GOSSIP: u8 = 10;
const TAG_PLUMTREE_IHAVE: u8 = 11;
const TAG_PLUMTREE_GRAFT: u8 = 12;
const TAG_PLUMTREE_PRUNE: u8 = 13;
const TAG_PLUMTREE_IHAVE_BATCH: u8 = 14;

/// Encoded size of one announcement inside an `IHaveBatch` frame.
const ANNOUNCEMENT_LEN: usize = 16 + 4;

fn put_addr(buf: &mut BytesMut, addr: &SocketAddr) {
    match addr.ip() {
        IpAddr::V4(ip) => {
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        IpAddr::V6(ip) => {
            buf.put_u8(6);
            buf.put_slice(&ip.octets());
        }
    }
    buf.put_u16(addr.port());
}

fn get_addr(buf: &mut Bytes) -> Result<SocketAddr, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let family = buf.get_u8();
    let ip: IpAddr = match family {
        4 => {
            if buf.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            let mut octets = [0u8; 4];
            buf.copy_to_slice(&mut octets);
            IpAddr::V4(Ipv4Addr::from(octets))
        }
        6 => {
            if buf.remaining() < 16 {
                return Err(WireError::Truncated);
            }
            let mut octets = [0u8; 16];
            buf.copy_to_slice(&mut octets);
            IpAddr::V6(Ipv6Addr::from(octets))
        }
        other => return Err(WireError::BadAddressFamily { family: other }),
    };
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(SocketAddr::new(ip, buf.get_u16()))
}

fn put_addr_list(buf: &mut BytesMut, addrs: &[SocketAddr]) {
    buf.put_u16(addrs.len() as u16);
    for addr in addrs {
        put_addr(buf, addr);
    }
}

fn get_addr_list(buf: &mut Bytes) -> Result<Vec<SocketAddr>, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u16() as usize;
    let mut addrs = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        addrs.push(get_addr(buf)?);
    }
    Ok(addrs)
}

/// Encodes a frame, including the `u32` length prefix.
///
/// # Panics
///
/// Panics if a [`Frame::PlumtreeIHaveBatch`] carries more than `u16::MAX`
/// announcements (senders chunk far below that).
pub fn encode(frame: &Frame) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    match frame {
        Frame::Hello { sender } => {
            body.put_u8(TAG_HELLO);
            put_addr(&mut body, sender);
        }
        Frame::Membership(message) => encode_membership(&mut body, message),
        Frame::Gossip { id, hops, payload } => {
            body.put_u8(TAG_GOSSIP);
            body.put_u128(*id);
            body.put_u32(*hops);
            body.put_u32(payload.len() as u32);
            body.put_slice(payload);
        }
        Frame::PlumtreeGossip { id, round, payload } => {
            body.put_u8(TAG_PLUMTREE_GOSSIP);
            body.put_u128(*id);
            body.put_u32(*round);
            body.put_u32(payload.len() as u32);
            body.put_slice(payload);
        }
        Frame::PlumtreeIHave { id, round } => {
            body.put_u8(TAG_PLUMTREE_IHAVE);
            body.put_u128(*id);
            body.put_u32(*round);
        }
        Frame::PlumtreeIHaveBatch { anns } => {
            // The count is a u16; a silent truncation here would desync
            // count and payload and drop announcements at the decoder.
            // Senders chunk at hyparview_plumtree::MAX_IHAVE_BATCH (1024),
            // far below this limit.
            assert!(anns.len() <= u16::MAX as usize, "IHaveBatch exceeds the wire count field");
            body.put_u8(TAG_PLUMTREE_IHAVE_BATCH);
            body.put_u16(anns.len() as u16);
            for (id, round) in anns {
                body.put_u128(*id);
                body.put_u32(*round);
            }
        }
        Frame::PlumtreeGraft { id, round } => {
            body.put_u8(TAG_PLUMTREE_GRAFT);
            match id {
                Some(id) => {
                    body.put_u8(1);
                    body.put_u128(*id);
                }
                None => body.put_u8(0),
            }
            body.put_u32(*round);
        }
        Frame::PlumtreePrune => body.put_u8(TAG_PLUMTREE_PRUNE),
    }
    let mut framed = BytesMut::with_capacity(4 + body.len());
    framed.put_u32(body.len() as u32);
    framed.extend_from_slice(&body);
    framed.freeze()
}

fn encode_membership(body: &mut BytesMut, message: &Message<SocketAddr>) {
    match message {
        Message::Join => body.put_u8(TAG_JOIN),
        Message::ForwardJoin { new_node, ttl } => {
            body.put_u8(TAG_FORWARD_JOIN);
            put_addr(body, new_node);
            body.put_u8(*ttl);
        }
        Message::ForwardJoinReply => body.put_u8(TAG_FORWARD_JOIN_REPLY),
        Message::Neighbor { priority } => {
            body.put_u8(TAG_NEIGHBOR);
            body.put_u8(match priority {
                Priority::High => 1,
                Priority::Low => 0,
            });
        }
        Message::NeighborReply { accepted } => {
            body.put_u8(TAG_NEIGHBOR_REPLY);
            body.put_u8(u8::from(*accepted));
        }
        Message::Disconnect => body.put_u8(TAG_DISCONNECT),
        Message::Shuffle { origin, ttl, nodes } => {
            body.put_u8(TAG_SHUFFLE);
            put_addr(body, origin);
            body.put_u8(*ttl);
            put_addr_list(body, nodes);
        }
        Message::ShuffleReply { nodes } => {
            body.put_u8(TAG_SHUFFLE_REPLY);
            put_addr_list(body, nodes);
        }
    }
}

/// Decodes one frame payload (without the length prefix).
///
/// # Errors
///
/// Returns [`WireError`] on truncation, unknown tags or bad addresses.
pub fn decode(mut payload: Bytes) -> Result<Frame, WireError> {
    if payload.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let tag = payload.get_u8();
    let frame = match tag {
        TAG_HELLO => Frame::Hello { sender: get_addr(&mut payload)? },
        TAG_JOIN => Frame::Membership(Message::Join),
        TAG_FORWARD_JOIN => {
            let new_node = get_addr(&mut payload)?;
            if payload.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            Frame::Membership(Message::ForwardJoin { new_node, ttl: payload.get_u8() })
        }
        TAG_FORWARD_JOIN_REPLY => Frame::Membership(Message::ForwardJoinReply),
        TAG_NEIGHBOR => {
            if payload.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            let priority = if payload.get_u8() == 1 { Priority::High } else { Priority::Low };
            Frame::Membership(Message::Neighbor { priority })
        }
        TAG_NEIGHBOR_REPLY => {
            if payload.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            Frame::Membership(Message::NeighborReply { accepted: payload.get_u8() == 1 })
        }
        TAG_DISCONNECT => Frame::Membership(Message::Disconnect),
        TAG_SHUFFLE => {
            let origin = get_addr(&mut payload)?;
            if payload.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            let ttl = payload.get_u8();
            let nodes = get_addr_list(&mut payload)?;
            Frame::Membership(Message::Shuffle { origin, ttl, nodes })
        }
        TAG_SHUFFLE_REPLY => {
            Frame::Membership(Message::ShuffleReply { nodes: get_addr_list(&mut payload)? })
        }
        TAG_GOSSIP => {
            if payload.remaining() < 16 + 4 + 4 {
                return Err(WireError::Truncated);
            }
            let id = payload.get_u128();
            let hops = payload.get_u32();
            let len = payload.get_u32() as usize;
            if payload.remaining() < len {
                return Err(WireError::Truncated);
            }
            Frame::Gossip { id, hops, payload: payload.copy_to_bytes(len) }
        }
        TAG_PLUMTREE_GOSSIP => {
            if payload.remaining() < 16 + 4 + 4 {
                return Err(WireError::Truncated);
            }
            let id = payload.get_u128();
            let round = payload.get_u32();
            let len = payload.get_u32() as usize;
            if payload.remaining() < len {
                return Err(WireError::Truncated);
            }
            Frame::PlumtreeGossip { id, round, payload: payload.copy_to_bytes(len) }
        }
        TAG_PLUMTREE_IHAVE => {
            if payload.remaining() < 16 + 4 {
                return Err(WireError::Truncated);
            }
            let id = payload.get_u128();
            let round = payload.get_u32();
            Frame::PlumtreeIHave { id, round }
        }
        TAG_PLUMTREE_IHAVE_BATCH => {
            if payload.remaining() < 2 {
                return Err(WireError::Truncated);
            }
            let count = payload.get_u16() as usize;
            if payload.remaining() < count * ANNOUNCEMENT_LEN {
                return Err(WireError::Truncated);
            }
            let mut anns = Vec::with_capacity(count);
            for _ in 0..count {
                let id = payload.get_u128();
                let round = payload.get_u32();
                anns.push((id, round));
            }
            Frame::PlumtreeIHaveBatch { anns }
        }
        TAG_PLUMTREE_GRAFT => {
            if payload.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            let id = match payload.get_u8() {
                0 => None,
                _ => {
                    if payload.remaining() < 16 {
                        return Err(WireError::Truncated);
                    }
                    Some(payload.get_u128())
                }
            };
            if payload.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            Frame::PlumtreeGraft { id, round: payload.get_u32() }
        }
        TAG_PLUMTREE_PRUNE => Frame::PlumtreePrune,
        other => return Err(WireError::UnknownTag { tag: other }),
    };
    Ok(frame)
}

/// Incremental frame reader: feed bytes, pull complete frames.
///
/// # Examples
///
/// ```
/// use hyparview_net::wire::{encode, Frame, FrameReader};
///
/// let frame = Frame::Hello { sender: "127.0.0.1:4000".parse().unwrap() };
/// let bytes = encode(&frame);
/// let mut reader = FrameReader::new();
/// reader.extend(&bytes[..3]); // partial delivery
/// assert!(reader.next_frame().unwrap().is_none());
/// reader.extend(&bytes[3..]);
/// assert_eq!(reader.next_frame().unwrap(), Some(frame));
/// ```
#[derive(Debug, Default)]
pub struct FrameReader {
    buffer: BytesMut,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader { buffer: BytesMut::new() }
    }

    /// Appends raw bytes received from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame, if any.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the stream is corrupt; the connection
    /// should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buffer.len() < 4 {
            return Ok(None);
        }
        let len =
            u32::from_be_bytes([self.buffer[0], self.buffer[1], self.buffer[2], self.buffer[3]])
                as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge { len });
        }
        if self.buffer.len() < 4 + len {
            return Ok(None);
        }
        self.buffer.advance(4);
        let payload = self.buffer.split_to(len).freeze();
        decode(payload).map(Some)
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    fn round_trip(frame: Frame) {
        let encoded = encode(&frame);
        let mut payload = encoded.clone();
        let len = payload.get_u32() as usize;
        assert_eq!(len, payload.remaining());
        let decoded = decode(payload).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn round_trip_all_membership_messages() {
        round_trip(Frame::Membership(Message::Join));
        round_trip(Frame::Membership(Message::ForwardJoin {
            new_node: addr("10.1.2.3:9000"),
            ttl: 6,
        }));
        round_trip(Frame::Membership(Message::ForwardJoinReply));
        round_trip(Frame::Membership(Message::Neighbor { priority: Priority::High }));
        round_trip(Frame::Membership(Message::Neighbor { priority: Priority::Low }));
        round_trip(Frame::Membership(Message::NeighborReply { accepted: true }));
        round_trip(Frame::Membership(Message::NeighborReply { accepted: false }));
        round_trip(Frame::Membership(Message::Disconnect));
        round_trip(Frame::Membership(Message::Shuffle {
            origin: addr("192.168.0.1:1234"),
            ttl: 4,
            nodes: vec![addr("10.0.0.1:1"), addr("10.0.0.2:2")],
        }));
        round_trip(Frame::Membership(Message::ShuffleReply {
            nodes: vec![addr("[::1]:8000"), addr("10.0.0.3:3")],
        }));
    }

    #[test]
    fn round_trip_hello_and_gossip() {
        round_trip(Frame::Hello { sender: addr("[2001:db8::1]:443") });
        round_trip(Frame::Gossip {
            id: 0xDEAD_BEEF_0123_4567_89AB_CDEF_0000_1111,
            hops: 7,
            payload: Bytes::from_static(b"hello overlay"),
        });
    }

    #[test]
    fn round_trip_empty_gossip_payload() {
        round_trip(Frame::Gossip { id: 1, hops: 0, payload: Bytes::new() });
    }

    #[test]
    fn round_trip_plumtree_frames() {
        round_trip(Frame::PlumtreeGossip {
            id: 0x0123_4567_89AB_CDEF_1111_2222_3333_4444,
            round: 3,
            payload: Bytes::from_static(b"tree payload"),
        });
        round_trip(Frame::PlumtreeGossip { id: 0, round: 0, payload: Bytes::new() });
        round_trip(Frame::PlumtreeIHave { id: u128::MAX, round: u32::MAX });
        round_trip(Frame::PlumtreeGraft { id: Some(7), round: 2 });
        round_trip(Frame::PlumtreeGraft { id: None, round: 9 });
        round_trip(Frame::PlumtreePrune);
        round_trip(Frame::PlumtreeIHaveBatch { anns: vec![(1, 2)] });
        round_trip(Frame::PlumtreeIHaveBatch {
            anns: vec![(u128::MAX, u32::MAX), (0, 0), (42, 7)],
        });
    }

    #[test]
    fn large_ihave_batch_fits_a_frame() {
        // The state machine chunks at 1024 announcements; the frame must
        // accept that comfortably under MAX_FRAME_LEN.
        let anns: Vec<(u128, u32)> = (0..1024u128).map(|i| (i, i as u32)).collect();
        let frame = Frame::PlumtreeIHaveBatch { anns };
        let encoded = encode(&frame);
        assert!(encoded.len() < MAX_FRAME_LEN, "batch frame too large: {}", encoded.len());
        round_trip(frame);
    }

    #[test]
    fn truncated_plumtree_frames_rejected() {
        // IHave missing its round.
        let mut body = BytesMut::new();
        body.put_u8(11);
        body.put_u128(9);
        assert_eq!(decode(body.freeze()), Err(WireError::Truncated));
        // PlumtreeGossip whose declared payload length overruns the frame.
        let mut body = BytesMut::new();
        body.put_u8(10);
        body.put_u128(9);
        body.put_u32(1);
        body.put_u32(100);
        body.put_slice(b"short");
        assert_eq!(decode(body.freeze()), Err(WireError::Truncated));
        // Graft announcing an id but not carrying it.
        let mut body = BytesMut::new();
        body.put_u8(12);
        body.put_u8(1);
        assert_eq!(decode(body.freeze()), Err(WireError::Truncated));
        // Graft missing its round.
        let mut body = BytesMut::new();
        body.put_u8(12);
        body.put_u8(0);
        assert_eq!(decode(body.freeze()), Err(WireError::Truncated));
        // IHaveBatch whose declared count overruns the frame.
        let mut body = BytesMut::new();
        body.put_u8(14);
        body.put_u16(3);
        body.put_u128(1);
        body.put_u32(1);
        assert_eq!(decode(body.freeze()), Err(WireError::Truncated));
        // IHaveBatch with no count at all.
        assert_eq!(decode(Bytes::from_static(&[14])), Err(WireError::Truncated));
    }

    #[test]
    fn reader_handles_fragmentation() {
        let frames = vec![
            Frame::Membership(Message::Join),
            Frame::Gossip { id: 9, hops: 1, payload: Bytes::from_static(b"x") },
            Frame::Hello { sender: addr("127.0.0.1:1") },
        ];
        let mut stream = BytesMut::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        // Feed one byte at a time.
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for byte in stream.iter() {
            reader.extend(&[*byte]);
            while let Some(frame) = reader.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, frames);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn reader_handles_batched_frames() {
        let frames: Vec<Frame> =
            (0..10).map(|i| Frame::Gossip { id: i, hops: 0, payload: Bytes::new() }).collect();
        let mut stream = BytesMut::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        let mut reader = FrameReader::new();
        reader.extend(&stream);
        let mut decoded = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            decoded.push(frame);
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut reader = FrameReader::new();
        reader.extend(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        reader.extend(&[0u8; 16]);
        assert!(matches!(reader.next_frame(), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(Bytes::from_static(&[200])), Err(WireError::UnknownTag { tag: 200 }));
    }

    #[test]
    fn truncated_payloads_rejected() {
        assert_eq!(decode(Bytes::new()), Err(WireError::Truncated));
        // ForwardJoin missing the ttl byte.
        let mut body = BytesMut::new();
        body.put_u8(2);
        body.put_u8(4);
        body.put_slice(&[10, 0, 0, 1]);
        body.put_u16(80);
        assert_eq!(decode(body.freeze()), Err(WireError::Truncated));
    }

    #[test]
    fn bad_family_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(0); // Hello
        body.put_u8(9); // bogus family
        assert_eq!(decode(body.freeze()), Err(WireError::BadAddressFamily { family: 9 }));
    }

    #[test]
    fn error_display_nonempty() {
        for err in [
            WireError::FrameTooLarge { len: 1 },
            WireError::Truncated,
            WireError::UnknownTag { tag: 1 },
            WireError::BadAddressFamily { family: 1 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
