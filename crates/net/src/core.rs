//! The backend-independent node core: HyParView protocol + broadcast
//! engine + stats, speaking to the outside world only through the
//! [`NodeCtx`] effect sink.
//!
//! Both runtimes drive the same [`NodeCore`]:
//!
//! * the thread-per-connection backend (`node.rs` event loop over
//!   [`crate::transport::Transport`]) — one core per thread;
//! * the reactor backend (`reactor.rs`) — many cores multiplexed onto one
//!   epoll loop.
//!
//! Keeping the core sans-runtime is what makes the two backends
//! *differentially testable*: identical frames in produce identical frames
//! out, regardless of which I/O shell carried them.

use crate::dedup::RecentSet;
use crate::node::NetConfig;
use crate::wire::Frame;
use bytes::Bytes;
use crossbeam::channel::Sender;
use hyparview_core::{Action, Actions, HyParView, Message};
use hyparview_obsv::{
    names, Clock, CounterId, Registry, TimerKind, TraceEvent, TraceKind, TraceRing, TraceSink,
    WallClock,
};
use hyparview_plumtree::{
    Announcement, BroadcastMode, PlumtreeMessage, PlumtreeOut, PlumtreeState, PlumtreeTimer,
};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// A gossip message delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Globally unique broadcast id.
    pub id: u128,
    /// Hops travelled before reaching this node (0 = local broadcast).
    pub hops: u32,
    /// Application payload.
    pub payload: Bytes,
}

/// Runtime counters of a node.
///
/// A *snapshot view*: the source of truth is the core's
/// [`hyparview_obsv::Registry`] (canonical `frames.*` / `broadcast.*` /
/// `net.*` names, shared with the simulator); this struct is materialized
/// from it on every publish.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Broadcasts initiated by this node.
    pub broadcasts_sent: u64,
    /// Gossip messages delivered (first receipt), own broadcasts included.
    pub deliveries: u64,
    /// Redundant gossip receipts suppressed by the dedup set.
    pub duplicates: u64,
    /// Broadcast frames dropped because they belong to the *other*
    /// [`BroadcastMode`] — nonzero means a mode-misconfigured cluster.
    pub mode_mismatched: u64,
    /// Every frame shipped to the transport (membership + broadcast).
    pub frames_sent: u64,
    /// Payload-carrying broadcast frames sent (`Gossip` / `PlumtreeGossip`).
    pub payload_frames_sent: u64,
    /// Single `IHave` announcement frames sent.
    pub ihave_frames_sent: u64,
    /// Batched `IHaveBatch` frames sent.
    pub ihave_batch_frames_sent: u64,
    /// Announcements carried inside those `IHaveBatch` frames — the
    /// batching win is `ihave_batch_anns_sent / ihave_batch_frames_sent`.
    pub ihave_batch_anns_sent: u64,
}

/// Dense handles into a [`NodeCore`]'s registry, registered once at
/// construction so the frame hot path updates by vector index.
struct NetCounters {
    broadcasts_sent: CounterId,
    deliveries: CounterId,
    duplicates: CounterId,
    mode_mismatched: CounterId,
    frames_sent: CounterId,
    frames_payload: CounterId,
    frames_ihave: CounterId,
    frames_ihave_batch: CounterId,
    frames_ihave_batch_anns: CounterId,
}

impl NetCounters {
    fn register(registry: &mut Registry) -> NetCounters {
        NetCounters {
            broadcasts_sent: registry.counter(names::BROADCAST_SENT),
            deliveries: registry.counter(names::BROADCAST_DELIVERED),
            duplicates: registry.counter(names::BROADCAST_DUPLICATES),
            mode_mismatched: registry.counter(names::NET_MODE_MISMATCHED),
            frames_sent: registry.counter(names::FRAMES_SENT),
            frames_payload: registry.counter(names::FRAMES_PAYLOAD_SENT),
            frames_ihave: registry.counter(names::FRAMES_IHAVE_SENT),
            frames_ihave_batch: registry.counter(names::FRAMES_IHAVE_BATCH_SENT),
            frames_ihave_batch_anns: registry.counter(names::FRAMES_IHAVE_BATCH_ANNS_SENT),
        }
    }
}

/// Mutable view snapshots shared with the application-facing handle.
#[derive(Debug, Default, Clone)]
pub(crate) struct Shared {
    pub(crate) active: Vec<SocketAddr>,
    pub(crate) passive: Vec<SocketAddr>,
    pub(crate) eager: Vec<SocketAddr>,
    pub(crate) lazy: Vec<SocketAddr>,
    pub(crate) stats: NodeStats,
    /// Mirror of the core's full metric registry (canonical names,
    /// `hyparview.*` and `plumtree.*` counters included).
    pub(crate) metrics: Registry,
    /// Trace events drained from the core's ring on publish (bounded by
    /// the same capacity).
    pub(crate) trace: Option<TraceRing>,
}

/// The effect sink a [`NodeCore`] drives its runtime through: frames out,
/// graceful connection teardown, timer arming. Implementations:
/// `ThreadedCtx` (per-node event loop over `Transport`) and `ReactorCtx`
/// (shared epoll loop).
pub(crate) trait NodeCtx {
    /// Ships `frame` to `to`, opening a connection lazily. Failures are
    /// asynchronous: they come back as an `on_peer_failed` call.
    fn send_frame(&mut self, to: SocketAddr, frame: &Frame);
    /// Drops the outbound connection to `peer` (after flushing queued
    /// frames) without reporting a failure.
    fn disconnect(&mut self, peer: SocketAddr);
    /// Arms `timer` to fire after `delay` (wall clock).
    fn schedule(&mut self, timer: PlumtreeTimer, delay: Duration);
}

/// The broadcast engine a core runs.
#[allow(clippy::large_enum_variant)] // exactly one per node; size is irrelevant
pub(crate) enum Broadcaster {
    /// The paper's eager flood (§4.1.ii) with bounded duplicate suppression.
    Flood { seen: RecentSet<u128> },
    /// Plumtree: eager/lazy dissemination; timers are armed through the
    /// [`NodeCtx`], scaled by `unit`.
    Plumtree { state: PlumtreeState<SocketAddr, Bytes>, unit: Duration },
}

/// One node's full protocol state, independent of the I/O backend.
pub(crate) struct NodeCore {
    local: SocketAddr,
    protocol: HyParView<SocketAddr>,
    broadcaster: Broadcaster,
    shared: Arc<Mutex<Shared>>,
    delivery_tx: Sender<Delivery>,
    metrics: Registry,
    counters: NetCounters,
    trace: Option<TraceRing>,
    clock: WallClock,
    /// Reusable scratch buffer for protocol actions.
    actions: Actions<SocketAddr>,
}

impl NodeCore {
    /// Builds the core for `local` from the runtime configuration.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the protocol configuration is rejected.
    pub(crate) fn new(
        local: SocketAddr,
        config: &NetConfig,
        shared: Arc<Mutex<Shared>>,
        delivery_tx: Sender<Delivery>,
    ) -> std::io::Result<NodeCore> {
        let seed = config.seed.unwrap_or_else(rand::random);
        let protocol = HyParView::new(local, config.protocol.clone(), seed)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let broadcaster = match config.broadcast_mode {
            BroadcastMode::Flood => {
                Broadcaster::Flood { seen: RecentSet::new(config.dedup_capacity) }
            }
            BroadcastMode::Plumtree => Broadcaster::Plumtree {
                state: PlumtreeState::new(
                    local,
                    config.plumtree.clone().with_cache_capacity(config.dedup_capacity),
                ),
                unit: config.plumtree_timer_unit,
            },
        };
        let mut metrics = Registry::new();
        let counters = NetCounters::register(&mut metrics);
        let trace = (config.trace_capacity > 0).then(|| TraceRing::new(config.trace_capacity));
        Ok(NodeCore {
            local,
            protocol,
            broadcaster,
            shared,
            delivery_tx,
            metrics,
            counters,
            trace,
            clock: WallClock::new(),
            actions: Actions::new(),
        })
    }

    /// Appends one decision-trace event, stamped with this node's
    /// wall-clock microseconds (no-op unless tracing is configured).
    fn trace_event(&mut self, kind: TraceKind) {
        let Some(ring) = &mut self.trace else { return };
        let node = u64::from(self.local.port());
        ring.record(TraceEvent { time: self.clock.now(), node, kind });
    }

    /// The node's identity (its listen address).
    pub(crate) fn local(&self) -> SocketAddr {
        self.local
    }

    /// Starts a join through `contact`.
    pub(crate) fn join(&mut self, contact: SocketAddr, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.join(contact, &mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Gracefully leaves the overlay (DISCONNECT to all active peers).
    pub(crate) fn leave(&mut self, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.leave(&mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Runs one membership shuffle cycle.
    pub(crate) fn on_shuffle_tick(&mut self, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.shuffle_tick(&mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Reacts to a transport-detected peer failure.
    pub(crate) fn on_peer_failed(&mut self, peer: SocketAddr, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.on_peer_failed(peer, &mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Handles one decoded frame from `from`.
    pub(crate) fn on_frame(&mut self, from: SocketAddr, frame: Frame, ctx: &mut dyn NodeCtx) {
        match frame {
            Frame::Hello { .. } => {} // handled by the transport layer
            Frame::Membership(message) => {
                // A rejected NEIGHBOR probe means the connection to the
                // rejecting peer has no further use — drop it instead of
                // letting repair attempts leak connections.
                let rejected = matches!(message, Message::NeighborReply { accepted: false });
                let mut actions = std::mem::take(&mut self.actions);
                self.protocol.handle_message(from, message, &mut actions);
                self.execute(&mut actions, ctx);
                self.actions = actions;
                if rejected && !self.protocol.active_view().contains(&from) {
                    self.send(from, &Frame::Membership(Message::Disconnect), ctx);
                    ctx.disconnect(from);
                }
            }
            Frame::Gossip { id, hops, payload } => {
                let Broadcaster::Flood { seen } = &mut self.broadcaster else {
                    // Flood traffic in Plumtree mode: a misconfigured peer.
                    self.metrics.inc(self.counters.mode_mismatched);
                    return;
                };
                if !seen.insert(id) {
                    self.metrics.inc(self.counters.duplicates);
                    return;
                }
                self.metrics.inc(self.counters.deliveries);
                self.trace_event(TraceKind::Delivered { msg: id as u64, hops });
                let _ = self.delivery_tx.try_send(Delivery { id, hops, payload: payload.clone() });
                // Eager flood: forward to the whole active view except the
                // sender (§4.1.ii).
                let frame = Frame::Gossip { id, hops: hops + 1, payload };
                for peer in self.protocol.broadcast_targets(Some(from)) {
                    self.send(peer, &frame, ctx);
                }
            }
            Frame::PlumtreeGossip { id, round, payload } => {
                self.on_plumtree(from, PlumtreeMessage::Gossip { id, round, payload }, ctx);
            }
            Frame::PlumtreeIHave { id, round } => {
                self.on_plumtree(from, PlumtreeMessage::IHave { id, round }, ctx);
            }
            Frame::PlumtreeIHaveBatch { anns } => {
                let anns = anns.iter().map(|&(id, round)| Announcement { id, round }).collect();
                self.on_plumtree(from, PlumtreeMessage::IHaveBatch { anns }, ctx);
            }
            Frame::PlumtreeGraft { id, round } => {
                self.on_plumtree(from, PlumtreeMessage::Graft { id, round }, ctx);
            }
            Frame::PlumtreePrune => {
                self.on_plumtree(from, PlumtreeMessage::Prune, ctx);
            }
        }
    }

    /// Broadcasts a payload originated by this node.
    pub(crate) fn broadcast(&mut self, id: u128, payload: Bytes, ctx: &mut dyn NodeCtx) {
        match &mut self.broadcaster {
            Broadcaster::Flood { seen } => {
                if !seen.insert(id) {
                    return; // id collision with a recent broadcast: drop
                }
                self.metrics.inc(self.counters.broadcasts_sent);
                self.metrics.inc(self.counters.deliveries);
                self.trace_event(TraceKind::Delivered { msg: id as u64, hops: 0 });
                let _ =
                    self.delivery_tx.try_send(Delivery { id, hops: 0, payload: payload.clone() });
                let frame = Frame::Gossip { id, hops: 1, payload };
                for peer in self.protocol.broadcast_targets(None) {
                    self.send(peer, &frame, ctx);
                }
            }
            Broadcaster::Plumtree { state, .. } => {
                let mut out = PlumtreeOut::new();
                state.broadcast(id, payload, &mut out);
                if !out.deliveries.is_empty() {
                    self.metrics.inc(self.counters.broadcasts_sent);
                }
                self.apply_plumtree(out, ctx);
            }
        }
    }

    /// Fires one Plumtree timer that the runtime armed via
    /// [`NodeCtx::schedule`].
    pub(crate) fn on_plumtree_timer(&mut self, timer: PlumtreeTimer, ctx: &mut dyn NodeCtx) {
        let kind = match timer {
            PlumtreeTimer::Missing(_) => TimerKind::MissingMsg,
            PlumtreeTimer::LazyFlush => TimerKind::LazyFlush,
        };
        self.trace_event(TraceKind::TimerFired { timer: kind });
        let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster else {
            return;
        };
        let mut out = PlumtreeOut::new();
        state.on_timer(timer, &mut out);
        self.apply_plumtree(out, ctx);
    }

    fn on_plumtree(
        &mut self,
        from: SocketAddr,
        message: PlumtreeMessage<Bytes>,
        ctx: &mut dyn NodeCtx,
    ) {
        if !matches!(self.broadcaster, Broadcaster::Plumtree { .. }) {
            // Plumtree traffic in flood mode: a misconfigured peer.
            self.metrics.inc(self.counters.mode_mismatched);
            return;
        }
        // Receiver-side tree decisions (the sender side traces
        // `GraftSent`/`PruneSent` in `apply_plumtree`).
        match &message {
            PlumtreeMessage::Graft { .. } => {
                self.trace_event(TraceKind::EagerPromote { peer: u64::from(from.port()) });
            }
            PlumtreeMessage::Prune => {
                self.trace_event(TraceKind::LazyDemote { peer: u64::from(from.port()) });
            }
            _ => {}
        }
        let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster else { return };
        if let PlumtreeMessage::Gossip { id, .. } = &message {
            if state.has_seen(*id) {
                self.metrics.inc(self.counters.duplicates);
            }
        }
        let mut out = PlumtreeOut::new();
        state.handle_message(from, message, &mut out);
        self.apply_plumtree(out, ctx);
    }

    /// Ships the effects of one Plumtree step: frames out, deliveries up,
    /// timer requests to the runtime.
    fn apply_plumtree(&mut self, mut out: PlumtreeOut<SocketAddr, Bytes>, ctx: &mut dyn NodeCtx) {
        for (to, message) in out.outbox.drain() {
            match &message {
                PlumtreeMessage::Graft { id, .. } => {
                    let msg = id.map(|id| id as u64).unwrap_or(0);
                    self.trace_event(TraceKind::GraftSent { peer: u64::from(to.port()), msg });
                }
                PlumtreeMessage::Prune => {
                    self.trace_event(TraceKind::PruneSent { peer: u64::from(to.port()) });
                }
                _ => {}
            }
            let frame = plumtree_frame(message);
            self.send(to, &frame, ctx);
        }
        for delivery in out.deliveries.drain(..) {
            self.metrics.inc(self.counters.deliveries);
            self.trace_event(TraceKind::Delivered {
                msg: delivery.id as u64,
                hops: delivery.round,
            });
            let _ = self.delivery_tx.try_send(Delivery {
                id: delivery.id,
                hops: delivery.round,
                payload: delivery.payload,
            });
        }
        if out.timers.is_empty() {
            return;
        }
        let Broadcaster::Plumtree { unit, .. } = &self.broadcaster else { return };
        let unit = *unit;
        for request in out.timers.drain(..) {
            let delay = unit.saturating_mul(request.delay.min(u32::MAX as u64) as u32);
            ctx.schedule(request.timer, delay);
        }
    }

    /// Counts and ships one outgoing frame.
    fn send(&mut self, to: SocketAddr, frame: &Frame, ctx: &mut dyn NodeCtx) {
        self.metrics.inc(self.counters.frames_sent);
        match frame {
            Frame::Gossip { .. } | Frame::PlumtreeGossip { .. } => {
                self.metrics.inc(self.counters.frames_payload);
            }
            Frame::PlumtreeIHave { .. } => self.metrics.inc(self.counters.frames_ihave),
            Frame::PlumtreeIHaveBatch { anns } => {
                self.metrics.inc(self.counters.frames_ihave_batch);
                self.metrics.add(self.counters.frames_ihave_batch_anns, anns.len() as u64);
            }
            _ => {}
        }
        ctx.send_frame(to, frame);
    }

    fn execute(&mut self, actions: &mut Actions<SocketAddr>, ctx: &mut dyn NodeCtx) {
        for action in actions.drain() {
            match action {
                Action::Send { to, message } => {
                    // Shuffle replies and neighbor rejections go to peers
                    // that are NOT neighbors: the paper sends them over
                    // temporary connections (§4.3). Without the close,
                    // every shuffle round leaks one connection per node —
                    // at thousands of nodes that exhausts the fd table in
                    // minutes. A trailing DISCONNECT tells the peer the
                    // close is deliberate, not a crash.
                    let temporary = matches!(
                        message,
                        Message::ShuffleReply { .. } | Message::NeighborReply { accepted: false }
                    ) && !self.protocol.active_view().contains(&to);
                    let graceful_close = matches!(message, Message::Disconnect);
                    self.send(to, &Frame::Membership(message), ctx);
                    if temporary {
                        self.trace_event(TraceKind::TempConnClose { peer: u64::from(to.port()) });
                        self.send(to, &Frame::Membership(Message::Disconnect), ctx);
                    }
                    if graceful_close || temporary {
                        // The frames are queued; the backend flushes them
                        // before tearing the connection down.
                        ctx.disconnect(to);
                    }
                }
                Action::NeighborUp { peer } => {
                    // New active-view links enter the Plumtree eager set;
                    // connections themselves are opened lazily by sends.
                    self.trace_event(TraceKind::NeighborUp { peer: u64::from(peer.port()) });
                    if let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster {
                        state.on_neighbor_up(peer);
                    }
                }
                Action::NeighborDown { peer } => {
                    // The peer keeps its connection until DISCONNECT or
                    // failure, but it leaves the broadcast tree immediately.
                    self.trace_event(TraceKind::NeighborDown { peer: u64::from(peer.port()) });
                    if let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster {
                        state.on_neighbor_down(peer);
                    }
                }
            }
        }
    }

    /// The legacy counters struct, materialized from the registry.
    fn stats_snapshot(&self) -> NodeStats {
        let c = |id: CounterId| self.metrics.counter_value(id);
        NodeStats {
            broadcasts_sent: c(self.counters.broadcasts_sent),
            deliveries: c(self.counters.deliveries),
            duplicates: c(self.counters.duplicates),
            mode_mismatched: c(self.counters.mode_mismatched),
            frames_sent: c(self.counters.frames_sent),
            payload_frames_sent: c(self.counters.frames_payload),
            ihave_frames_sent: c(self.counters.frames_ihave),
            ihave_batch_frames_sent: c(self.counters.frames_ihave_batch),
            ihave_batch_anns_sent: c(self.counters.frames_ihave_batch_anns),
        }
    }

    /// Copies the current views and counters into the shared snapshot the
    /// application handle reads.
    ///
    /// The protocol-layer counters (`hyparview.*`, `plumtree.*`) are
    /// refilled into the registry first, so the published mirror always
    /// carries the full canonical set. The refill registers those names on
    /// the first publish; afterwards the layout is stable and the mirror
    /// is an allocation-free value copy.
    pub(crate) fn publish(&mut self) {
        self.protocol.stats().fill_registry(&mut self.metrics);
        if let Broadcaster::Plumtree { state, .. } = &self.broadcaster {
            state.stats().fill_registry(&mut self.metrics);
        }
        let mut shared = self.shared.lock();
        shared.active = self.protocol.active_view().to_vec();
        shared.passive = self.protocol.passive_view().to_vec();
        if let Broadcaster::Plumtree { state, .. } = &self.broadcaster {
            shared.eager = state.eager_peers();
            shared.lazy = state.lazy_peers();
        }
        shared.stats = self.stats_snapshot();
        if shared.metrics.names().len() == self.metrics.names().len() {
            shared.metrics.copy_values_from(&self.metrics);
        } else {
            shared.metrics = self.metrics.clone();
        }
        if let Some(ring) = &mut self.trace {
            let sink = shared.trace.get_or_insert_with(|| TraceRing::new(ring.capacity()));
            for event in ring.drain() {
                sink.record(event);
            }
        }
    }
}

/// Plumtree message → wire frame.
fn plumtree_frame(message: PlumtreeMessage<Bytes>) -> Frame {
    match message {
        PlumtreeMessage::Gossip { id, round, payload } => {
            Frame::PlumtreeGossip { id, round, payload }
        }
        PlumtreeMessage::IHave { id, round } => Frame::PlumtreeIHave { id, round },
        PlumtreeMessage::IHaveBatch { anns } => {
            Frame::PlumtreeIHaveBatch { anns: anns.iter().map(|a| (a.id, a.round)).collect() }
        }
        PlumtreeMessage::Graft { id, round } => Frame::PlumtreeGraft { id, round },
        PlumtreeMessage::Prune => Frame::PlumtreePrune,
    }
}
