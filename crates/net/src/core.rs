//! The backend-independent node core: HyParView protocol + broadcast
//! engine + stats, speaking to the outside world only through the
//! [`NodeCtx`] effect sink.
//!
//! Both runtimes drive the same [`NodeCore`]:
//!
//! * the thread-per-connection backend (`node.rs` event loop over
//!   [`crate::transport::Transport`]) — one core per thread;
//! * the reactor backend (`reactor.rs`) — many cores multiplexed onto one
//!   epoll loop.
//!
//! Keeping the core sans-runtime is what makes the two backends
//! *differentially testable*: identical frames in produce identical frames
//! out, regardless of which I/O shell carried them.

use crate::dedup::RecentSet;
use crate::node::NetConfig;
use crate::wire::Frame;
use bytes::Bytes;
use crossbeam::channel::Sender;
use hyparview_core::{Action, Actions, HyParView, Message};
use hyparview_plumtree::{
    Announcement, BroadcastMode, PlumtreeMessage, PlumtreeOut, PlumtreeState, PlumtreeTimer,
};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// A gossip message delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Globally unique broadcast id.
    pub id: u128,
    /// Hops travelled before reaching this node (0 = local broadcast).
    pub hops: u32,
    /// Application payload.
    pub payload: Bytes,
}

/// Runtime counters of a node.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Broadcasts initiated by this node.
    pub broadcasts_sent: u64,
    /// Gossip messages delivered (first receipt), own broadcasts included.
    pub deliveries: u64,
    /// Redundant gossip receipts suppressed by the dedup set.
    pub duplicates: u64,
    /// Broadcast frames dropped because they belong to the *other*
    /// [`BroadcastMode`] — nonzero means a mode-misconfigured cluster.
    pub mode_mismatched: u64,
    /// Every frame shipped to the transport (membership + broadcast).
    pub frames_sent: u64,
    /// Payload-carrying broadcast frames sent (`Gossip` / `PlumtreeGossip`).
    pub payload_frames_sent: u64,
    /// Single `IHave` announcement frames sent.
    pub ihave_frames_sent: u64,
    /// Batched `IHaveBatch` frames sent.
    pub ihave_batch_frames_sent: u64,
    /// Announcements carried inside those `IHaveBatch` frames — the
    /// batching win is `ihave_batch_anns_sent / ihave_batch_frames_sent`.
    pub ihave_batch_anns_sent: u64,
}

/// Mutable view snapshots shared with the application-facing handle.
#[derive(Debug, Default, Clone)]
pub(crate) struct Shared {
    pub(crate) active: Vec<SocketAddr>,
    pub(crate) passive: Vec<SocketAddr>,
    pub(crate) eager: Vec<SocketAddr>,
    pub(crate) lazy: Vec<SocketAddr>,
    pub(crate) stats: NodeStats,
}

/// The effect sink a [`NodeCore`] drives its runtime through: frames out,
/// graceful connection teardown, timer arming. Implementations:
/// `ThreadedCtx` (per-node event loop over `Transport`) and `ReactorCtx`
/// (shared epoll loop).
pub(crate) trait NodeCtx {
    /// Ships `frame` to `to`, opening a connection lazily. Failures are
    /// asynchronous: they come back as an `on_peer_failed` call.
    fn send_frame(&mut self, to: SocketAddr, frame: &Frame);
    /// Drops the outbound connection to `peer` (after flushing queued
    /// frames) without reporting a failure.
    fn disconnect(&mut self, peer: SocketAddr);
    /// Arms `timer` to fire after `delay` (wall clock).
    fn schedule(&mut self, timer: PlumtreeTimer, delay: Duration);
}

/// The broadcast engine a core runs.
#[allow(clippy::large_enum_variant)] // exactly one per node; size is irrelevant
pub(crate) enum Broadcaster {
    /// The paper's eager flood (§4.1.ii) with bounded duplicate suppression.
    Flood { seen: RecentSet<u128> },
    /// Plumtree: eager/lazy dissemination; timers are armed through the
    /// [`NodeCtx`], scaled by `unit`.
    Plumtree { state: PlumtreeState<SocketAddr, Bytes>, unit: Duration },
}

/// One node's full protocol state, independent of the I/O backend.
pub(crate) struct NodeCore {
    local: SocketAddr,
    protocol: HyParView<SocketAddr>,
    broadcaster: Broadcaster,
    shared: Arc<Mutex<Shared>>,
    delivery_tx: Sender<Delivery>,
    stats: NodeStats,
    /// Reusable scratch buffer for protocol actions.
    actions: Actions<SocketAddr>,
}

impl NodeCore {
    /// Builds the core for `local` from the runtime configuration.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the protocol configuration is rejected.
    pub(crate) fn new(
        local: SocketAddr,
        config: &NetConfig,
        shared: Arc<Mutex<Shared>>,
        delivery_tx: Sender<Delivery>,
    ) -> std::io::Result<NodeCore> {
        let seed = config.seed.unwrap_or_else(rand::random);
        let protocol = HyParView::new(local, config.protocol.clone(), seed)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let broadcaster = match config.broadcast_mode {
            BroadcastMode::Flood => {
                Broadcaster::Flood { seen: RecentSet::new(config.dedup_capacity) }
            }
            BroadcastMode::Plumtree => Broadcaster::Plumtree {
                state: PlumtreeState::new(
                    local,
                    config.plumtree.clone().with_cache_capacity(config.dedup_capacity),
                ),
                unit: config.plumtree_timer_unit,
            },
        };
        Ok(NodeCore {
            local,
            protocol,
            broadcaster,
            shared,
            delivery_tx,
            stats: NodeStats::default(),
            actions: Actions::new(),
        })
    }

    /// The node's identity (its listen address).
    pub(crate) fn local(&self) -> SocketAddr {
        self.local
    }

    /// Starts a join through `contact`.
    pub(crate) fn join(&mut self, contact: SocketAddr, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.join(contact, &mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Gracefully leaves the overlay (DISCONNECT to all active peers).
    pub(crate) fn leave(&mut self, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.leave(&mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Runs one membership shuffle cycle.
    pub(crate) fn on_shuffle_tick(&mut self, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.shuffle_tick(&mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Reacts to a transport-detected peer failure.
    pub(crate) fn on_peer_failed(&mut self, peer: SocketAddr, ctx: &mut dyn NodeCtx) {
        let mut actions = std::mem::take(&mut self.actions);
        self.protocol.on_peer_failed(peer, &mut actions);
        self.execute(&mut actions, ctx);
        self.actions = actions;
    }

    /// Handles one decoded frame from `from`.
    pub(crate) fn on_frame(&mut self, from: SocketAddr, frame: Frame, ctx: &mut dyn NodeCtx) {
        match frame {
            Frame::Hello { .. } => {} // handled by the transport layer
            Frame::Membership(message) => {
                // A rejected NEIGHBOR probe means the connection to the
                // rejecting peer has no further use — drop it instead of
                // letting repair attempts leak connections.
                let rejected = matches!(message, Message::NeighborReply { accepted: false });
                let mut actions = std::mem::take(&mut self.actions);
                self.protocol.handle_message(from, message, &mut actions);
                self.execute(&mut actions, ctx);
                self.actions = actions;
                if rejected && !self.protocol.active_view().contains(&from) {
                    self.send(from, &Frame::Membership(Message::Disconnect), ctx);
                    ctx.disconnect(from);
                }
            }
            Frame::Gossip { id, hops, payload } => {
                let Broadcaster::Flood { seen } = &mut self.broadcaster else {
                    // Flood traffic in Plumtree mode: a misconfigured peer.
                    self.stats.mode_mismatched += 1;
                    return;
                };
                if !seen.insert(id) {
                    self.stats.duplicates += 1;
                    return;
                }
                self.stats.deliveries += 1;
                let _ = self.delivery_tx.try_send(Delivery { id, hops, payload: payload.clone() });
                // Eager flood: forward to the whole active view except the
                // sender (§4.1.ii).
                let frame = Frame::Gossip { id, hops: hops + 1, payload };
                for peer in self.protocol.broadcast_targets(Some(from)) {
                    self.send(peer, &frame, ctx);
                }
            }
            Frame::PlumtreeGossip { id, round, payload } => {
                self.on_plumtree(from, PlumtreeMessage::Gossip { id, round, payload }, ctx);
            }
            Frame::PlumtreeIHave { id, round } => {
                self.on_plumtree(from, PlumtreeMessage::IHave { id, round }, ctx);
            }
            Frame::PlumtreeIHaveBatch { anns } => {
                let anns = anns.iter().map(|&(id, round)| Announcement { id, round }).collect();
                self.on_plumtree(from, PlumtreeMessage::IHaveBatch { anns }, ctx);
            }
            Frame::PlumtreeGraft { id, round } => {
                self.on_plumtree(from, PlumtreeMessage::Graft { id, round }, ctx);
            }
            Frame::PlumtreePrune => {
                self.on_plumtree(from, PlumtreeMessage::Prune, ctx);
            }
        }
    }

    /// Broadcasts a payload originated by this node.
    pub(crate) fn broadcast(&mut self, id: u128, payload: Bytes, ctx: &mut dyn NodeCtx) {
        match &mut self.broadcaster {
            Broadcaster::Flood { seen } => {
                if !seen.insert(id) {
                    return; // id collision with a recent broadcast: drop
                }
                self.stats.broadcasts_sent += 1;
                self.stats.deliveries += 1;
                let _ =
                    self.delivery_tx.try_send(Delivery { id, hops: 0, payload: payload.clone() });
                let frame = Frame::Gossip { id, hops: 1, payload };
                for peer in self.protocol.broadcast_targets(None) {
                    self.send(peer, &frame, ctx);
                }
            }
            Broadcaster::Plumtree { state, .. } => {
                let mut out = PlumtreeOut::new();
                state.broadcast(id, payload, &mut out);
                if !out.deliveries.is_empty() {
                    self.stats.broadcasts_sent += 1;
                }
                self.apply_plumtree(out, ctx);
            }
        }
    }

    /// Fires one Plumtree timer that the runtime armed via
    /// [`NodeCtx::schedule`].
    pub(crate) fn on_plumtree_timer(&mut self, timer: PlumtreeTimer, ctx: &mut dyn NodeCtx) {
        let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster else {
            return;
        };
        let mut out = PlumtreeOut::new();
        state.on_timer(timer, &mut out);
        self.apply_plumtree(out, ctx);
    }

    fn on_plumtree(
        &mut self,
        from: SocketAddr,
        message: PlumtreeMessage<Bytes>,
        ctx: &mut dyn NodeCtx,
    ) {
        let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster else {
            // Plumtree traffic in flood mode: a misconfigured peer.
            self.stats.mode_mismatched += 1;
            return;
        };
        if let PlumtreeMessage::Gossip { id, .. } = &message {
            if state.has_seen(*id) {
                self.stats.duplicates += 1;
            }
        }
        let mut out = PlumtreeOut::new();
        state.handle_message(from, message, &mut out);
        self.apply_plumtree(out, ctx);
    }

    /// Ships the effects of one Plumtree step: frames out, deliveries up,
    /// timer requests to the runtime.
    fn apply_plumtree(&mut self, mut out: PlumtreeOut<SocketAddr, Bytes>, ctx: &mut dyn NodeCtx) {
        for (to, message) in out.outbox.drain() {
            let frame = plumtree_frame(message);
            self.send(to, &frame, ctx);
        }
        for delivery in out.deliveries.drain(..) {
            self.stats.deliveries += 1;
            let _ = self.delivery_tx.try_send(Delivery {
                id: delivery.id,
                hops: delivery.round,
                payload: delivery.payload,
            });
        }
        if out.timers.is_empty() {
            return;
        }
        let Broadcaster::Plumtree { unit, .. } = &self.broadcaster else { return };
        let unit = *unit;
        for request in out.timers.drain(..) {
            let delay = unit.saturating_mul(request.delay.min(u32::MAX as u64) as u32);
            ctx.schedule(request.timer, delay);
        }
    }

    /// Counts and ships one outgoing frame.
    fn send(&mut self, to: SocketAddr, frame: &Frame, ctx: &mut dyn NodeCtx) {
        self.stats.frames_sent += 1;
        match frame {
            Frame::Gossip { .. } | Frame::PlumtreeGossip { .. } => {
                self.stats.payload_frames_sent += 1;
            }
            Frame::PlumtreeIHave { .. } => self.stats.ihave_frames_sent += 1,
            Frame::PlumtreeIHaveBatch { anns } => {
                self.stats.ihave_batch_frames_sent += 1;
                self.stats.ihave_batch_anns_sent += anns.len() as u64;
            }
            _ => {}
        }
        ctx.send_frame(to, frame);
    }

    fn execute(&mut self, actions: &mut Actions<SocketAddr>, ctx: &mut dyn NodeCtx) {
        for action in actions.drain() {
            match action {
                Action::Send { to, message } => {
                    // Shuffle replies and neighbor rejections go to peers
                    // that are NOT neighbors: the paper sends them over
                    // temporary connections (§4.3). Without the close,
                    // every shuffle round leaks one connection per node —
                    // at thousands of nodes that exhausts the fd table in
                    // minutes. A trailing DISCONNECT tells the peer the
                    // close is deliberate, not a crash.
                    let temporary = matches!(
                        message,
                        Message::ShuffleReply { .. } | Message::NeighborReply { accepted: false }
                    ) && !self.protocol.active_view().contains(&to);
                    let graceful_close = matches!(message, Message::Disconnect);
                    self.send(to, &Frame::Membership(message), ctx);
                    if temporary {
                        self.send(to, &Frame::Membership(Message::Disconnect), ctx);
                    }
                    if graceful_close || temporary {
                        // The frames are queued; the backend flushes them
                        // before tearing the connection down.
                        ctx.disconnect(to);
                    }
                }
                Action::NeighborUp { peer } => {
                    // New active-view links enter the Plumtree eager set;
                    // connections themselves are opened lazily by sends.
                    if let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster {
                        state.on_neighbor_up(peer);
                    }
                }
                Action::NeighborDown { peer } => {
                    // The peer keeps its connection until DISCONNECT or
                    // failure, but it leaves the broadcast tree immediately.
                    if let Broadcaster::Plumtree { state, .. } = &mut self.broadcaster {
                        state.on_neighbor_down(peer);
                    }
                }
            }
        }
    }

    /// Copies the current views and counters into the shared snapshot the
    /// application handle reads.
    pub(crate) fn publish(&self) {
        let mut shared = self.shared.lock();
        shared.active = self.protocol.active_view().to_vec();
        shared.passive = self.protocol.passive_view().to_vec();
        if let Broadcaster::Plumtree { state, .. } = &self.broadcaster {
            shared.eager = state.eager_peers();
            shared.lazy = state.lazy_peers();
        }
        shared.stats = self.stats;
    }
}

/// Plumtree message → wire frame.
fn plumtree_frame(message: PlumtreeMessage<Bytes>) -> Frame {
    match message {
        PlumtreeMessage::Gossip { id, round, payload } => {
            Frame::PlumtreeGossip { id, round, payload }
        }
        PlumtreeMessage::IHave { id, round } => Frame::PlumtreeIHave { id, round },
        PlumtreeMessage::IHaveBatch { anns } => {
            Frame::PlumtreeIHaveBatch { anns: anns.iter().map(|a| (a.id, a.round)).collect() }
        }
        PlumtreeMessage::Graft { id, round } => Frame::PlumtreeGraft { id, round },
        PlumtreeMessage::Prune => Frame::PlumtreePrune,
    }
}
