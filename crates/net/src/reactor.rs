//! The nonblocking reactor backend: one epoll loop driving many nodes.
//!
//! Where the threaded backend spends 3+ OS threads per node (event loop,
//! accept loop, one writer per peer), the reactor multiplexes *every*
//! listener, connection, and timer of a whole [`Cluster`] of nodes onto a
//! single thread blocked in `epoll_wait`. That is what makes thousands of
//! live nodes in one process practical — the configuration the paper's
//! evaluation simulates (§6, 10k nodes) but its PlanetLab deployment could
//! not reach with real sockets.
//!
//! Architecture:
//!
//! * `Io` owns the fd table: a slab of `Slot`s (listener or connection
//!   state machine) keyed by slab index, registered with the shared
//!   [`Poller`]. Connections are nonblocking with per-connection
//!   [`FrameReader`]s (partial-frame resumption) and bounded outbound
//!   queues (`VecDeque<Bytes>` + partial-write cursor).
//! * `Reactor` owns the nodes: each a sans-runtime `NodeCore` plus its
//!   listener key, driven through a `ReactorCtx` effect sink. A single
//!   timer heap carries both
//!   shuffle ticks and Plumtree timers for all nodes.
//! * [`Cluster`] is the application handle: a cheaply clonable reference to
//!   the reactor thread. [`Cluster::spawn_node`] adds a node and returns
//!   the same [`Node`] handle the threaded backend produces —
//!   `Node::spawn` under [`TransportBackend::Reactor`](crate::node::TransportBackend)
//!   is just a single-node cluster.
//!
//! Failure semantics mirror the threaded transport: connect errors, broken
//! connections, and EOF surface as `on_peer_failed`; a peer whose bounded
//! outbound queue overflows is expelled NeEM-style (§5.5). Because the
//! reactor keeps read interest on *outbound* connections too, a crashed
//! peer is usually detected at EOF — earlier than the threaded backend's
//! write-time detection.

use crate::core::{NodeCore, NodeCtx, Shared};
use crate::node::{Control, NetConfig, Node, DELIVERY_QUEUE};
use crate::wire::{encode, Frame, FrameReader};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use hyparview_core::Message;
use hyparview_obsv::{names, CounterId, GaugeId, Registry};
use hyparview_plumtree::PlumtreeTimer;
use parking_lot::Mutex;
pub use polling::raise_nofile_limit;
use polling::{Event, Events, Poller};
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Read buffer size per readiness event (shared scratch, not per-conn).
const READ_BUF: usize = 16 * 1024;

/// A shared reactor runtime hosting any number of nodes on one thread.
///
/// Clones are cheap handles to the same reactor. The reactor thread shuts
/// down when the last handle *and* the last node spawned from it are gone.
///
/// # Examples
///
/// ```no_run
/// use hyparview_net::{Cluster, NetConfig};
///
/// # fn main() -> std::io::Result<()> {
/// let cluster = Cluster::new()?;
/// let a = cluster.spawn_node("127.0.0.1:0".parse().unwrap(), NetConfig::default())?;
/// let b = cluster.spawn_node("127.0.0.1:0".parse().unwrap(), NetConfig::default())?;
/// b.join(a.addr());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

pub(crate) struct ClusterInner {
    control: Sender<ReactorControl>,
    poller: Arc<Poller>,
    metrics: Arc<Mutex<Registry>>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ClusterInner {
    fn send(&self, msg: ReactorControl) {
        if self.control.send(msg).is_ok() {
            // The reactor may be blocked in epoll_wait; the self-pipe wakes
            // it to drain the control queue.
            let _ = self.poller.notify();
        }
    }
}

impl Drop for ClusterInner {
    fn drop(&mut self) {
        let _ = self.control.send(ReactorControl::Shutdown);
        let _ = self.poller.notify();
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
    }
}

impl Cluster {
    /// Starts a reactor thread with no nodes.
    ///
    /// # Errors
    ///
    /// Returns the OS error from creating the epoll instance or spawning
    /// the thread.
    pub fn new() -> std::io::Result<Cluster> {
        let poller = Arc::new(Poller::new()?);
        let (control_tx, control_rx) = unbounded();
        let metrics = Arc::new(Mutex::new(Registry::new()));
        let reactor_poller = Arc::clone(&poller);
        let reactor_metrics = Arc::clone(&metrics);
        let thread = std::thread::Builder::new()
            .name("hpv-reactor".to_owned())
            .spawn(move || Reactor::new(reactor_poller, control_rx, reactor_metrics).run())?;
        Ok(Cluster {
            inner: Arc::new(ClusterInner {
                control: control_tx,
                poller,
                metrics,
                thread: Mutex::new(Some(thread)),
            }),
        })
    }

    /// Snapshot of the reactor loop's introspection metrics (`reactor.*`):
    /// epoll wait counts and cumulative wait time, readiness-batch and
    /// per-connection outbound-queue high-water marks, timer-heap lag.
    /// Published once per loop iteration by the reactor thread.
    pub fn reactor_metrics(&self) -> Registry {
        self.inner.metrics.lock().clone()
    }

    /// Binds `addr` (port 0 for ephemeral) and adds a node to this reactor.
    /// The returned [`Node`] handle behaves identically to a
    /// threaded-backend node; `config.backend` is ignored (the node runs on
    /// *this* reactor by construction).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener, or `BrokenPipe`
    /// when the reactor thread has died.
    pub fn spawn_node(&self, addr: SocketAddr, config: NetConfig) -> std::io::Result<Node> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let (delivery_tx, delivery_rx) = bounded(DELIVERY_QUEUE);
        let shared = Arc::new(Mutex::new(Shared::default()));
        let core = NodeCore::new(local, &config, Arc::clone(&shared), delivery_tx)?;

        let (reply_tx, reply_rx) = bounded(1);
        self.inner.send(ReactorControl::AddNode {
            listener: Box::new(listener),
            core: Box::new(core),
            shuffle_interval: config.shuffle_interval,
            writer_queue: config.transport.writer_queue,
            reply: reply_tx,
        });
        let node = reply_rx.recv_timeout(Duration::from_secs(10)).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "reactor thread is gone")
        })?;
        Ok(Node::from_reactor(
            local,
            delivery_rx,
            shared,
            ReactorNode { cluster: Arc::clone(&self.inner), node },
        ))
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster").finish_non_exhaustive()
    }
}

/// The reactor-side half of a [`Node`] handle: a node index on a shared
/// reactor.
pub(crate) struct ReactorNode {
    cluster: Arc<ClusterInner>,
    node: usize,
}

impl ReactorNode {
    pub(crate) fn join(&self, contact: SocketAddr) {
        self.cluster.send(ReactorControl::Node(self.node, Control::Join(contact)));
    }

    pub(crate) fn broadcast(&self, id: u128, payload: Bytes) {
        self.cluster.send(ReactorControl::Node(self.node, Control::Broadcast { id, payload }));
    }

    pub(crate) fn leave(&self) {
        self.cluster.send(ReactorControl::Node(self.node, Control::Leave));
    }

    /// Removes the node from the reactor (closing its listener and every
    /// connection) and waits for the removal to take effect. The reactor
    /// thread keeps running for its other nodes.
    pub(crate) fn shutdown(&self) {
        let (ack_tx, ack_rx) = bounded(1);
        self.cluster.send(ReactorControl::RemoveNode { node: self.node, ack: ack_tx });
        let _ = ack_rx.recv_timeout(Duration::from_secs(10));
    }
}

enum ReactorControl {
    AddNode {
        listener: Box<TcpListener>,
        core: Box<NodeCore>,
        shuffle_interval: Duration,
        writer_queue: usize,
        reply: Sender<usize>,
    },
    Node(usize, Control),
    RemoveNode {
        node: usize,
        ack: Sender<()>,
    },
    Shutdown,
}

/// One entry in the fd slab.
enum Slot {
    Free,
    Listener { node: usize, listener: TcpListener },
    Conn(Conn),
}

/// A nonblocking connection state machine.
struct Conn {
    stream: TcpStream,
    /// The node this connection belongs to.
    node: usize,
    /// Canonical peer identity: the connect target for outbound
    /// connections, the `Hello` sender for inbound ones (`None` until it
    /// arrives).
    peer: Option<SocketAddr>,
    /// `true` for connections this side opened.
    outbound: bool,
    /// Nonblocking connect still in flight (await writability, then check
    /// `SO_ERROR`).
    connecting: bool,
    /// Graceful teardown: flush the queue, then close without reporting.
    closing: bool,
    /// The peer announced a graceful close (`DISCONNECT` frame): treat the
    /// following EOF as cleanup, not as a peer failure.
    goodbye: bool,
    /// Incremental frame decoder (partial-frame resumption across reads).
    reader: FrameReader,
    /// Outbound frame queue; `front_pos` is the partial-write cursor into
    /// the front element.
    outq: VecDeque<Bytes>,
    front_pos: usize,
    /// Whether the current epoll registration includes write interest.
    want_write: bool,
}

/// What a fully drained read pass left behind.
enum ReadOutcome {
    /// Socket still open (drained to `WouldBlock`).
    Open,
    /// Orderly EOF or fatal read/decode error.
    Broken,
    /// Frames before `Hello`: protocol violation, close silently.
    Violation,
}

/// The fd table: slab of slots + the outbound-connection index.
struct Io {
    poller: Arc<Poller>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// `(node, canonical peer) -> slab key` for outbound connections, so a
    /// node's sends reuse one connection per peer.
    outbound: HashMap<(usize, SocketAddr), usize>,
    /// Deepest outbound queue ever observed (`reactor.outq_high_water`) —
    /// how close the cluster came to NeEM slow-node expulsion.
    outq_high_water: u64,
}

impl Io {
    fn new(poller: Arc<Poller>) -> Io {
        Io {
            poller,
            slots: Vec::new(),
            free: Vec::new(),
            outbound: HashMap::new(),
            outq_high_water: 0,
        }
    }

    fn alloc_key(&mut self) -> usize {
        match self.free.pop() {
            Some(key) => key,
            None => {
                self.slots.push(Slot::Free);
                self.slots.len() - 1
            }
        }
    }

    /// Closes and frees a slot: deregisters the fd, drops the socket, and
    /// removes a matching outbound-index entry.
    fn close(&mut self, key: usize) {
        match std::mem::replace(&mut self.slots[key], Slot::Free) {
            Slot::Free => return,
            Slot::Listener { listener, .. } => {
                let _ = self.poller.delete(listener.as_raw_fd());
            }
            Slot::Conn(conn) => {
                let _ = self.poller.delete(conn.stream.as_raw_fd());
                if conn.outbound {
                    if let Some(peer) = conn.peer {
                        if self.outbound.get(&(conn.node, peer)) == Some(&key) {
                            self.outbound.remove(&(conn.node, peer));
                        }
                    }
                }
            }
        }
        self.free.push(key);
    }

    /// Registers a freshly accepted inbound connection.
    fn register_inbound(&mut self, node: usize, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let key = self.alloc_key();
        if self.poller.add(stream.as_raw_fd(), key, true, false).is_err() {
            self.free.push(key);
            return;
        }
        self.slots[key] = Slot::Conn(Conn {
            stream,
            node,
            peer: None,
            outbound: false,
            connecting: false,
            closing: false,
            goodbye: false,
            reader: FrameReader::new(),
            outq: VecDeque::new(),
            front_pos: 0,
            want_write: false,
        });
    }

    /// Starts a nonblocking outbound connection from `node` (identity
    /// `local`) to `to`, queueing the `Hello` as its first frame.
    fn open(&mut self, node: usize, local: SocketAddr, to: SocketAddr) -> std::io::Result<usize> {
        let stream = polling::connect_tcp(to)?;
        let _ = stream.set_nodelay(true);
        let key = self.alloc_key();
        // Read interest from the start: EOF on an outbound connection is
        // the earliest crash signal we get.
        if let Err(e) = self.poller.add(stream.as_raw_fd(), key, true, true) {
            self.free.push(key);
            return Err(e);
        }
        self.slots[key] = Slot::Conn(Conn {
            stream,
            node,
            peer: Some(to),
            outbound: true,
            connecting: true,
            closing: false,
            goodbye: false,
            reader: FrameReader::new(),
            outq: VecDeque::from([encode(&Frame::Hello { sender: local })]),
            front_pos: 0,
            want_write: true,
        });
        self.outbound.insert((node, to), key);
        Ok(key)
    }

    /// Queues `bytes` to `(node, to)`, opening the connection lazily.
    /// Failures — immediate connect errors, queue overflow (NeEM slow-node
    /// expulsion), fatal write errors — close the connection and report
    /// `to` into `failures`.
    fn send(
        &mut self,
        node: usize,
        local: SocketAddr,
        to: SocketAddr,
        bytes: Bytes,
        queue_cap: usize,
        failures: &mut VecDeque<SocketAddr>,
    ) {
        let key = match self.outbound.get(&(node, to)) {
            Some(&key) => key,
            None => match self.open(node, local, to) {
                Ok(key) => key,
                Err(_) => {
                    failures.push_back(to);
                    return;
                }
            },
        };
        let Slot::Conn(conn) = &mut self.slots[key] else { return };
        conn.outq.push_back(bytes);
        self.outq_high_water = self.outq_high_water.max(conn.outq.len() as u64);
        if conn.outq.len() > queue_cap {
            // NeEM-style slow-node expulsion (§5.5): the peer is not
            // draining; cutting it loose beats back-pressuring the overlay.
            self.close(key);
            failures.push_back(to);
            return;
        }
        if conn.connecting {
            return; // flushed on connect completion
        }
        if self.flush(key).is_err() {
            self.close(key);
            failures.push_back(to);
        }
    }

    /// Writes as much of the queue as the socket accepts, adjusts write
    /// interest, and completes a pending graceful close once drained.
    ///
    /// # Errors
    ///
    /// Returns the fatal write error; the caller decides whether it is a
    /// reportable failure (the slot is *not* closed here).
    fn flush(&mut self, key: usize) -> std::io::Result<()> {
        let Slot::Conn(conn) = &mut self.slots[key] else { return Ok(()) };
        while let Some(front) = conn.outq.front() {
            match conn.stream.write(&front[conn.front_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "connection closed mid-frame",
                    ))
                }
                Ok(n) => {
                    conn.front_pos += n;
                    if conn.front_pos == front.len() {
                        conn.outq.pop_front();
                        conn.front_pos = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if conn.outq.is_empty() && conn.closing {
            self.close(key);
            return Ok(());
        }
        let want_write = conn.connecting || !conn.outq.is_empty();
        if want_write != conn.want_write {
            conn.want_write = want_write;
            self.poller.modify(conn.stream.as_raw_fd(), key, true, want_write)?;
        }
        Ok(())
    }

    /// Graceful disconnect of `(node, peer)`: the connection leaves the
    /// outbound index immediately (a later send opens a fresh one), drains
    /// its remaining queue, then closes without reporting a failure.
    fn disconnect(&mut self, node: usize, peer: SocketAddr) {
        let Some(key) = self.outbound.remove(&(node, peer)) else { return };
        let Slot::Conn(conn) = &mut self.slots[key] else { return };
        if conn.outq.is_empty() && !conn.connecting {
            self.close(key);
        } else {
            conn.closing = true;
        }
    }

    /// Silently closes the outbound connection of `(node, peer)`, if any.
    /// Used when the *inbound* side already proved the peer dead, so the
    /// stale outbound socket does not linger until its next write fails —
    /// the reactor-side twin of the threaded transport's writer eviction.
    fn drop_outbound(&mut self, node: usize, peer: SocketAddr) {
        if let Some(&key) = self.outbound.get(&(node, peer)) {
            self.close(key);
        }
    }

    /// Drains the socket and decodes complete frames, tagging each with the
    /// connection's identity as of that point in the stream (`Hello`
    /// updates it mid-buffer).
    fn read_conn(
        &mut self,
        key: usize,
        buf: &mut [u8],
        frames: &mut Vec<(SocketAddr, Frame)>,
    ) -> ReadOutcome {
        let Slot::Conn(conn) = &mut self.slots[key] else { return ReadOutcome::Open };
        loop {
            match conn.stream.read(buf) {
                Ok(0) => return ReadOutcome::Broken, // EOF: peer closed or crashed
                Ok(n) => {
                    conn.reader.extend(&buf[..n]);
                    loop {
                        match conn.reader.next_frame() {
                            Ok(Some(Frame::Hello { sender })) => conn.peer = Some(sender),
                            Ok(Some(frame)) => match conn.peer {
                                Some(from) => {
                                    // A DISCONNECT announces a graceful
                                    // close: the EOF that follows is
                                    // cleanup, not a crash.
                                    if matches!(frame, Frame::Membership(Message::Disconnect)) {
                                        conn.goodbye = true;
                                    }
                                    frames.push((from, frame));
                                }
                                None => return ReadOutcome::Violation,
                            },
                            Ok(None) => break,
                            Err(_) => return ReadOutcome::Broken,
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Broken,
            }
        }
    }
}

/// One armed deadline on the shared timer heap.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum TimerEntry {
    /// Periodic membership shuffle for a node (re-armed on fire).
    Shuffle(usize),
    /// A Plumtree timer the node's core scheduled.
    Plumtree(usize, PlumtreeTimer),
}

struct NodeSlot {
    core: NodeCore,
    listener_key: usize,
    writer_queue: usize,
    shuffle_interval: Duration,
}

/// The [`NodeCtx`] of the reactor backend: frames go to the shared fd
/// table, timers onto the shared heap. Peer failures raised by sends land
/// in `failures` and are fed back into the same core by
/// [`Reactor::with_core`]'s drain loop.
struct ReactorCtx<'a> {
    io: &'a mut Io,
    node: usize,
    local: SocketAddr,
    writer_queue: usize,
    timers: &'a mut BinaryHeap<std::cmp::Reverse<(Instant, u64, TimerEntry)>>,
    timer_seq: &'a mut u64,
    failures: VecDeque<SocketAddr>,
}

impl NodeCtx for ReactorCtx<'_> {
    fn send_frame(&mut self, to: SocketAddr, frame: &Frame) {
        let bytes = encode(frame);
        self.io.send(self.node, self.local, to, bytes, self.writer_queue, &mut self.failures);
    }

    fn disconnect(&mut self, peer: SocketAddr) {
        self.io.disconnect(self.node, peer);
    }

    fn schedule(&mut self, timer: PlumtreeTimer, delay: Duration) {
        *self.timer_seq += 1;
        self.timers.push(std::cmp::Reverse((
            Instant::now() + delay,
            *self.timer_seq,
            TimerEntry::Plumtree(self.node, timer),
        )));
    }
}

/// Loop-local accumulators for the `reactor.*` introspection metrics,
/// flushed into the shared registry once per loop iteration.
#[derive(Default)]
struct LoopStats {
    epoll_waits: u64,
    epoll_wait_us: u64,
    batch_max: u64,
    timer_lag_us_max: u64,
    timers_fired: u64,
}

/// Handles into the shared introspection registry (registered once).
struct GaugeIds {
    epoll_waits: CounterId,
    epoll_wait_us: CounterId,
    timers_fired: CounterId,
    batch_max: GaugeId,
    outq_high_water: GaugeId,
    timer_lag_us_max: GaugeId,
}

struct Reactor {
    io: Io,
    /// Node table. Indices are never reused, so a stale timer or a late
    /// control message for a removed node is a clean no-op.
    nodes: Vec<Option<NodeSlot>>,
    timers: BinaryHeap<std::cmp::Reverse<(Instant, u64, TimerEntry)>>,
    timer_seq: u64,
    control_rx: Receiver<ReactorControl>,
    /// Nodes whose shared snapshot is stale; published once per loop
    /// iteration instead of once per event.
    dirty: HashSet<usize>,
    stats: LoopStats,
    metrics: Arc<Mutex<Registry>>,
    gauge_ids: GaugeIds,
}

impl Reactor {
    fn new(
        poller: Arc<Poller>,
        control_rx: Receiver<ReactorControl>,
        metrics: Arc<Mutex<Registry>>,
    ) -> Reactor {
        let gauge_ids = {
            let mut registry = metrics.lock();
            GaugeIds {
                epoll_waits: registry.counter(names::REACTOR_EPOLL_WAITS),
                epoll_wait_us: registry.counter(names::REACTOR_EPOLL_WAIT_US),
                timers_fired: registry.counter(names::REACTOR_TIMERS_FIRED),
                batch_max: registry.gauge(names::REACTOR_BATCH_MAX),
                outq_high_water: registry.gauge(names::REACTOR_OUTQ_HIGH_WATER),
                timer_lag_us_max: registry.gauge(names::REACTOR_TIMER_LAG_US_MAX),
            }
        };
        Reactor {
            io: Io::new(poller),
            nodes: Vec::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            control_rx,
            dirty: HashSet::new(),
            stats: LoopStats::default(),
            metrics,
            gauge_ids,
        }
    }

    /// Mirrors the loop-local accumulators into the shared registry —
    /// one short lock per loop iteration, absolute values (cumulative
    /// counters, high-water gauges).
    fn publish_gauges(&mut self) {
        let mut registry = self.metrics.lock();
        registry.set_counter(self.gauge_ids.epoll_waits, self.stats.epoll_waits);
        registry.set_counter(self.gauge_ids.epoll_wait_us, self.stats.epoll_wait_us);
        registry.set_counter(self.gauge_ids.timers_fired, self.stats.timers_fired);
        registry.set_gauge(self.gauge_ids.batch_max, self.stats.batch_max);
        registry.set_gauge(self.gauge_ids.outq_high_water, self.io.outq_high_water);
        registry.set_gauge(self.gauge_ids.timer_lag_us_max, self.stats.timer_lag_us_max);
    }

    /// Runs `f` against a node's core with a fresh [`ReactorCtx`], then
    /// drains any peer failures the effects raised back into the same core
    /// (which may raise more — the loop runs to quiescence; it terminates
    /// because re-failing a peer already outside the active view is a
    /// protocol no-op).
    fn with_core(&mut self, node: usize, f: impl FnOnce(&mut NodeCore, &mut ReactorCtx)) {
        let Reactor { io, nodes, timers, timer_seq, dirty, .. } = self;
        let Some(slot) = nodes.get_mut(node).and_then(|slot| slot.as_mut()) else { return };
        let mut ctx = ReactorCtx {
            io,
            node,
            local: slot.core.local(),
            writer_queue: slot.writer_queue,
            timers,
            timer_seq,
            failures: VecDeque::new(),
        };
        f(&mut slot.core, &mut ctx);
        while let Some(peer) = ctx.failures.pop_front() {
            slot.core.on_peer_failed(peer, &mut ctx);
        }
        dirty.insert(node);
    }

    fn arm_shuffle(&mut self, node: usize, interval: Duration) {
        self.timer_seq += 1;
        self.timers.push(std::cmp::Reverse((
            Instant::now() + interval,
            self.timer_seq,
            TimerEntry::Shuffle(node),
        )));
    }

    /// `true` to keep running, `false` on shutdown.
    fn drain_control(&mut self) -> bool {
        loop {
            match self.control_rx.try_recv() {
                Ok(ReactorControl::AddNode {
                    listener,
                    core,
                    shuffle_interval,
                    writer_queue,
                    reply,
                }) => {
                    let key = self.io.alloc_key();
                    let node = self.nodes.len();
                    if self.io.poller.add(listener.as_raw_fd(), key, true, false).is_err() {
                        // fd exhaustion: drop the node; the reply sender is
                        // dropped and spawn_node reports BrokenPipe.
                        self.io.free.push(key);
                        continue;
                    }
                    self.io.slots[key] = Slot::Listener { node, listener: *listener };
                    self.nodes.push(Some(NodeSlot {
                        core: *core,
                        listener_key: key,
                        writer_queue,
                        shuffle_interval,
                    }));
                    self.arm_shuffle(node, shuffle_interval);
                    self.dirty.insert(node);
                    let _ = reply.send(node);
                }
                Ok(ReactorControl::Node(node, control)) => match control {
                    Control::Join(contact) => {
                        self.with_core(node, |core, ctx| core.join(contact, ctx))
                    }
                    Control::Broadcast { id, payload } => {
                        self.with_core(node, |core, ctx| core.broadcast(id, payload, ctx))
                    }
                    Control::Leave => self.with_core(node, |core, ctx| core.leave(ctx)),
                    Control::Shutdown => self.remove_node(node),
                },
                Ok(ReactorControl::RemoveNode { node, ack }) => {
                    self.remove_node(node);
                    let _ = ack.send(());
                }
                Ok(ReactorControl::Shutdown) | Err(TryRecvError::Disconnected) => return false,
                Err(TryRecvError::Empty) => return true,
            }
        }
    }

    fn remove_node(&mut self, node: usize) {
        let Some(mut slot) = self.nodes.get_mut(node).and_then(Option::take) else { return };
        self.io.close(slot.listener_key);
        let conn_keys: Vec<usize> = self
            .io
            .slots
            .iter()
            .enumerate()
            .filter_map(|(key, s)| match s {
                Slot::Conn(conn) if conn.node == node => Some(key),
                _ => None,
            })
            .collect();
        for key in conn_keys {
            self.io.close(key);
        }
        slot.core.publish();
        self.dirty.remove(&node);
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = Instant::now();
            match self.timers.peek() {
                Some(std::cmp::Reverse((deadline, _, _))) if *deadline <= now => {}
                _ => return,
            }
            let Some(std::cmp::Reverse((deadline, _, entry))) = self.timers.pop() else { return };
            self.stats.timers_fired += 1;
            let lag_us = now.saturating_duration_since(deadline).as_micros() as u64;
            self.stats.timer_lag_us_max = self.stats.timer_lag_us_max.max(lag_us);
            match entry {
                TimerEntry::Shuffle(node) => {
                    self.with_core(node, |core, ctx| core.on_shuffle_tick(ctx));
                    if let Some(Some(slot)) = self.nodes.get(node) {
                        let interval = slot.shuffle_interval;
                        self.arm_shuffle(node, interval);
                    }
                }
                TimerEntry::Plumtree(node, timer) => {
                    self.with_core(node, |core, ctx| core.on_plumtree_timer(timer, ctx));
                }
            }
        }
    }

    fn publish_dirty(&mut self) {
        for node in self.dirty.drain() {
            if let Some(Some(slot)) = self.nodes.get_mut(node) {
                slot.core.publish();
            }
        }
    }

    /// Closes a broken connection and reports the failure to its node —
    /// unless the teardown was graceful (`closing`, or the peer said
    /// goodbye with a DISCONNECT frame) or the peer never identified
    /// itself. An inbound failure also evicts the node's outbound
    /// connection to that peer; a goodbye evicts it silently.
    fn fail_conn(&mut self, key: usize) {
        let Slot::Conn(conn) = &self.io.slots[key] else { return };
        let (node, peer, closing, goodbye) = (conn.node, conn.peer, conn.closing, conn.goodbye);
        self.io.close(key);
        if closing {
            return;
        }
        let Some(peer) = peer else { return };
        self.io.drop_outbound(node, peer);
        if goodbye {
            return;
        }
        self.with_core(node, |core, ctx| core.on_peer_failed(peer, ctx));
    }

    fn handle_event(
        &mut self,
        event: Event,
        buf: &mut [u8],
        frames: &mut Vec<(SocketAddr, Frame)>,
    ) {
        let key = event.key;
        match self.io.slots.get(key) {
            Some(Slot::Listener { .. }) => self.handle_accept(key),
            Some(Slot::Conn(_)) => {
                if event.writable {
                    self.handle_writable(key);
                }
                if event.readable {
                    self.handle_readable(key, buf, frames);
                }
            }
            // Stale event for a slot freed earlier in this batch.
            _ => {}
        }
    }

    fn handle_accept(&mut self, key: usize) {
        loop {
            let (node, stream) = {
                let Slot::Listener { node, listener } = &self.io.slots[key] else { return };
                match listener.accept() {
                    Ok((stream, _)) => (*node, stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            };
            self.io.register_inbound(node, stream);
        }
    }

    fn handle_writable(&mut self, key: usize) {
        let Slot::Conn(conn) = &mut self.io.slots[key] else { return };
        if conn.connecting {
            match conn.stream.take_error() {
                Ok(None) => conn.connecting = false,
                // Connect failed (SO_ERROR set) or is unreadable: the peer
                // is unreachable.
                Ok(Some(_)) | Err(_) => {
                    self.fail_conn(key);
                    return;
                }
            }
        }
        if self.io.flush(key).is_err() {
            self.fail_conn(key);
        }
    }

    fn handle_readable(
        &mut self,
        key: usize,
        buf: &mut [u8],
        frames: &mut Vec<(SocketAddr, Frame)>,
    ) {
        {
            let Slot::Conn(conn) = &self.io.slots[key] else { return };
            if conn.connecting {
                // Readability on a connecting socket means the connect
                // failed; let the writable path classify it via SO_ERROR.
                return;
            }
        }
        frames.clear();
        let outcome = self.io.read_conn(key, buf, frames);
        let node = match &self.io.slots[key] {
            Slot::Conn(conn) => conn.node,
            _ => return,
        };
        // Dispatch what arrived before any EOF/error: a crashing peer's
        // last frames still count.
        for (from, frame) in frames.drain(..) {
            self.with_core(node, |core, ctx| core.on_frame(from, frame, ctx));
        }
        match outcome {
            ReadOutcome::Open => {}
            ReadOutcome::Broken => self.fail_conn(key),
            // Data before Hello: drop the connection without a failure
            // report (we never learned who it was).
            ReadOutcome::Violation => self.io.close(key),
        }
    }

    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        let mut buf = vec![0u8; READ_BUF];
        let mut frames: Vec<(SocketAddr, Frame)> = Vec::new();
        loop {
            if !self.drain_control() {
                break;
            }
            self.fire_due_timers();
            self.publish_dirty();
            self.publish_gauges();
            let timeout =
                self.timers.peek().map(|next| (next.0).0.saturating_duration_since(Instant::now()));
            let wait_start = Instant::now();
            if self.io.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            self.stats.epoll_waits += 1;
            self.stats.epoll_wait_us += wait_start.elapsed().as_micros() as u64;
            // `events` snapshots keys; a handler may free (and the slab
            // reuse) a key within the batch. handle_event re-checks the
            // slot kind, and a misdirected read/flush on a reused slot is
            // harmless under level-triggered polling (real readiness is
            // re-reported on the next wait).
            let mut batch = 0u64;
            for event in events.iter() {
                batch += 1;
                self.handle_event(event, &mut buf, &mut frames);
            }
            self.stats.batch_max = self.stats.batch_max.max(batch);
        }
        // Shutdown: close every fd and publish final snapshots.
        for key in 0..self.io.slots.len() {
            self.io.close(key);
        }
        for slot in self.nodes.iter_mut().flatten() {
            slot.core.publish();
        }
        self.publish_gauges();
    }
}
