//! # hyparview-net
//!
//! A real TCP runtime for HyParView: the deployable counterpart of the
//! discrete-event simulator, using the very same sans-io protocol core
//! (`hyparview-core`).
//!
//! * [`wire`] — hand-rolled length-prefixed frame codec.
//! * [`transport`] — thread-per-connection TCP with lazy outbound
//!   connections, identity `Hello` handshake, failure reporting (connect
//!   errors, broken connections, NeEM-style slow-node expulsion, §5.5).
//! * [`reactor`] — the nonblocking epoll backend: a [`Cluster`] runtime
//!   multiplexing the listeners, connections, and timers of thousands of
//!   nodes onto one thread.
//! * [`node`] — the application-facing [`Node`] handle, runnable on either
//!   backend ([`node::TransportBackend`]); both drive the same
//!   backend-independent protocol core.
//!
//! The paper's §4.1 architecture maps directly: one open TCP connection per
//! active-view member, broadcast by flooding the active view, TCP doubling
//! as the failure detector.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod core;
pub mod dedup;
pub mod node;
pub mod reactor;
pub mod transport;
pub mod wire;

pub use hyparview_plumtree::{BroadcastMode, PlumtreeConfig};
pub use node::{
    Delivery, NetConfig, Node, NodeStats, TransportBackend, DEFAULT_LAZY_FLUSH_INTERVAL,
    DEFAULT_OPTIMIZATION_THRESHOLD,
};
pub use reactor::Cluster;
pub use transport::{Transport, TransportConfig, TransportEvent};
pub use wire::{Frame, FrameReader, WireError};
